#include "scheduler/scheduler.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "support/diag.hpp"
#include "support/matrix.hpp"

namespace pp::scheduler {

namespace {

// Legality verdict of one candidate row against one dependence.
struct DepVerdict {
  bool weak = true;      ///< min latency difference >= 0 on every piece
  bool carried = true;   ///< min > 0 on every piece (strictly satisfied)
  bool zero = true;      ///< distance identically 0 (parallelism)
};

// phi_dst(t) - phi_src(A(t)) as an affine expression over dst coordinates,
// restricted to the statements' COMMON loop levels. Beyond the common
// nesting the dependence is loop-independent: it is satisfied by the
// preserved statement order (the scalar dimensions of a 2d+1 schedule,
// which this row model elides), so deeper rows place no constraint on it.
// Number of loops the two statements actually share: the common prefix of
// their loop paths (falling back to min depth when paths are not known).
std::size_t shared_depth(const SchedStatement& src, const SchedStatement& dst) {
  if (src.loop_path.size() != src.depth || dst.loop_path.size() != dst.depth)
    return std::min(src.depth, dst.depth);
  std::size_t n = 0;
  while (n < src.loop_path.size() && n < dst.loop_path.size() &&
         src.loop_path[n] == dst.loop_path[n])
    ++n;
  return n;
}

poly::AffineExpr latency_diff(const std::vector<i64>& row, std::size_t common,
                              std::size_t dst_depth,
                              const SchedDepPiece& piece) {
  std::size_t dim = piece.dst_domain.dim();
  PP_CHECK(dim == dst_depth, "dep piece dimension mismatch");
  poly::AffineExpr diff(dim);
  for (std::size_t i = 0; i < common && i < row.size(); ++i) {
    if (row[i] == 0) continue;
    diff = diff + poly::AffineExpr::var(dim, i) * row[i];
    diff = diff - piece.src_fn.output(i) * row[i];
  }
  return diff;
}

DepVerdict check_dep(const std::vector<i64>& row, const SchedStatement& src,
                     const SchedStatement& dst, const SchedDep& dep) {
  DepVerdict v;
  std::size_t common = shared_depth(src, dst);
  if (common == 0) {
    // No shared loops: distributed statement order satisfies the
    // dependence at the (elided) scalar level; no row is constrained.
    v.carried = false;
    return v;
  }
  for (const auto& piece : dep.pieces) {
    if (!piece.analyzable) {
      v.weak = false;
      v.carried = false;
      v.zero = false;
      return v;
    }
    poly::AffineExpr diff = latency_diff(row, common, dst.depth, piece);
    poly::BoundResult lo = piece.dst_domain.minimize(diff);
    if (lo.status == poly::LpStatus::kInfeasible) continue;  // empty piece
    if (lo.status != poly::LpStatus::kOptimal) {
      // Unbounded below: cannot be legal.
      v.weak = v.carried = v.zero = false;
      return v;
    }
    if (lo.value < Rat(0)) v.weak = false;
    if (!(lo.value > Rat(0))) v.carried = false;
    // The max only matters for the zero-distance verdict, which needs
    // min == max == 0: skip the second LP unless the min is exactly 0
    // and the aggregate zero verdict is still alive.
    bool piece_zero = false;
    if (v.zero && lo.value == Rat(0)) {
      poly::BoundResult hi = piece.dst_domain.maximize(diff);
      piece_zero =
          hi.status == poly::LpStatus::kOptimal && hi.value == Rat(0);
    }
    if (!piece_zero) v.zero = false;
    if (!v.weak) {
      v.carried = false;
      return v;
    }
  }
  return v;
}

// Candidate schedule rows for aligned depth D: unit vectors (permutations)
// first, then small skews.
struct Candidate {
  std::vector<i64> row;
  bool skew = false;
};

std::vector<Candidate> make_candidates(std::size_t d, const Options& opts) {
  std::vector<Candidate> out;
  for (std::size_t i = 0; i < d; ++i) {
    std::vector<i64> r(d, 0);
    r[i] = 1;
    out.push_back({std::move(r), false});
  }
  if (opts.identity_only) return out;  // unit rows only (original order)
  if (opts.allow_skew && d >= 2) {
    auto add = [&](std::size_t i, std::size_t j, i64 ci, i64 cj) {
      std::vector<i64> r(d, 0);
      r[i] = ci;
      r[j] = cj;
      out.push_back({std::move(r), true});
    };
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) {
        add(i, j, 1, 1);
        add(i, j, 1, -1);
        add(i, j, -1, 1);
        for (i64 c = 2; c <= opts.max_skew_coeff; ++c) {
          add(i, j, c, 1);
          add(i, j, 1, c);
        }
      }
    }
  }
  return out;
}

bool lin_indep(const std::vector<std::vector<i64>>& rows,
               const std::vector<i64>& candidate) {
  RatMatrix m(0, candidate.size());
  for (const auto& r : rows) {
    RatVec rv(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) rv[i] = Rat(r[i]);
    m.push_row(rv);
  }
  RatVec cv(candidate.size());
  for (std::size_t i = 0; i < candidate.size(); ++i) cv[i] = Rat(candidate[i]);
  return m.rows() == 0 || !m.row_space_contains(cv);
}

// Schedules one fused group of statements.
GroupSchedule schedule_group(const Problem& problem, std::vector<int> stmts,
                             const Options& opts) {
  GroupSchedule g;
  std::sort(stmts.begin(), stmts.end());
  g.stmts = stmts;
  std::map<int, const SchedStatement*> by_id;
  for (const auto& s : problem.statements) by_id[s.id] = &s;
  std::set<int> in_group(stmts.begin(), stmts.end());
  std::size_t depth = 0;
  for (int id : stmts) {
    g.ops += by_id.at(id)->ops;
    depth = std::max(depth, by_id.at(id)->depth);
  }
  if (depth == 0) return g;

  // Dependences internal to this group.
  std::vector<const SchedDep*> deps;
  for (const auto& d : problem.deps) {
    if (in_group.count(d.src) && in_group.count(d.dst)) deps.push_back(&d);
  }
  // Opaque dependences force the identity schedule with no feedback —
  // unless the endpoints share no loops, in which case statement order
  // already satisfies them.
  for (const auto* d : deps) {
    if (shared_depth(*by_id.at(d->src), *by_id.at(d->dst)) == 0) continue;
    for (const auto& p : d->pieces) {
      if (!p.analyzable) g.schedulable = false;
    }
  }

  std::vector<Candidate> candidates = make_candidates(depth, opts);
  std::vector<std::vector<i64>> chosen;
  std::set<std::size_t> active;  // indices into deps
  for (std::size_t i = 0; i < deps.size(); ++i) active.insert(i);
  std::set<std::size_t> band_start_active = active;
  bool first_level_of_band = true;

  // A verdict depends only on (row, dep) — not on the level. The level
  // loop re-visits the same candidate rows, the band-legality pass
  // re-checks deps the scoring pass already solved, and the chosen row is
  // checked a third time when carried deps are retired. Each check is
  // several exact rational simplex solves (the dominant cost of
  // scheduling), so cache verdicts for the whole group search.
  std::vector<std::optional<DepVerdict>> vcache(candidates.size() *
                                                deps.size());
  auto checked = [&](std::size_t ci, std::size_t di) -> const DepVerdict& {
    std::optional<DepVerdict>& slot = vcache[ci * deps.size() + di];
    if (!slot) {
      const SchedDep& d = *deps[di];
      slot = check_dep(candidates[ci].row, *by_id.at(d.src),
                       *by_id.at(d.dst), d);
    }
    return *slot;
  };

  for (std::size_t level = 0; level < depth; ++level) {
    if (!g.schedulable) {
      // Identity fallback row.
      std::vector<i64> r(depth, 0);
      r[level] = 1;
      Level lv;
      lv.row = r;
      lv.new_band = true;  // each level its own (non-permutable) band
      g.levels.push_back(lv);
      chosen.push_back(r);
      continue;
    }

    struct Scored {
      const Candidate* cand;
      DepVerdict agg;            // vs active
      bool band_legal;           // weak vs band_start_active
      int order;
    };
    std::optional<Scored> best;
    auto better = [](const Scored& a, const Scored& b) {
      // Prefer: stays in band, then parallel, then non-skew, then
      // generation order (identity-like permutations first).
      if (a.band_legal != b.band_legal) return a.band_legal;
      if (a.agg.zero != b.agg.zero) return a.agg.zero;
      if (a.cand->skew != b.cand->skew) return !a.cand->skew;
      return a.order < b.order;
    };
    int order = 0;
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      const Candidate& cand = candidates[ci];
      ++order;
      // Approximate mode: only the original loop order's row at this level.
      if (opts.identity_only && ci != level) continue;
      if (!lin_indep(chosen, cand.row)) continue;
      DepVerdict agg;
      agg.carried = !active.empty();
      bool weak_active = true;
      for (std::size_t di : active) {
        const DepVerdict& v = checked(ci, di);
        if (!v.weak) {
          weak_active = false;
          break;
        }
        agg.zero = agg.zero && v.zero;
        agg.carried = agg.carried && v.carried;
      }
      if (!weak_active) continue;
      bool band_legal = true;
      for (std::size_t di : band_start_active) {
        if (active.count(di)) continue;  // already checked
        const DepVerdict& v = checked(ci, di);
        if (!v.weak) {
          band_legal = false;
          break;
        }
      }
      Scored s{&cand, agg, band_legal, order};
      if (!best || better(s, *best)) best = s;
    }

    Level lv;
    if (!best) {
      // Over-approximate domains can make even the identity row look
      // illegal; fall back to it and degrade the level's feedback.
      std::vector<i64> r(depth, 0);
      r[level] = 1;
      lv.row = r;
      lv.new_band = true;
      band_start_active = active;
      first_level_of_band = true;
      g.levels.push_back(lv);
      chosen.push_back(r);
      continue;
    }

    lv.row = best->cand->row;
    lv.skew = best->cand->skew;
    lv.parallel = best->agg.zero && !active.empty();
    if (active.empty()) lv.parallel = true;  // no dependences at all
    lv.new_band = first_level_of_band || !best->band_legal;
    if (lv.new_band && !first_level_of_band) band_start_active = active;
    first_level_of_band = false;

    // Remove carried dependences.
    const std::size_t best_ci = static_cast<std::size_t>(best->order - 1);
    std::set<std::size_t> still_active;
    for (std::size_t di : active) {
      if (checked(best_ci, di).carried)
        lv.carries = true;
      else
        still_active.insert(di);
    }
    active = std::move(still_active);

    chosen.push_back(lv.row);
    g.levels.push_back(lv);
  }
  if (!g.levels.empty()) g.levels[0].new_band = true;
  return g;
}

}  // namespace

int GroupSchedule::tile_depth() const {
  int best = 0, run = 0;
  for (const auto& lv : levels) {
    if (lv.new_band) run = 0;
    ++run;
    best = std::max(best, run);
  }
  return best;
}

bool GroupSchedule::fully_permutable() const {
  if (levels.empty()) return false;
  for (std::size_t i = 1; i < levels.size(); ++i)
    if (levels[i].new_band) return false;
  return true;
}

bool GroupSchedule::uses_skew() const {
  for (const auto& lv : levels)
    if (lv.skew) return true;
  return false;
}

bool GroupSchedule::has_outer_parallelism() const {
  for (std::size_t i = 0; i + 1 < levels.size(); ++i)
    if (levels[i].parallel) return true;
  // A single parallel loop still exposes coarse parallelism.
  return levels.size() == 1 && levels[0].parallel;
}

bool GroupSchedule::inner_parallel() const {
  return !levels.empty() && levels.back().parallel;
}

bool GroupSchedule::band_spans(std::size_t from, std::size_t to) const {
  if (from > to || to >= levels.size()) return false;
  for (std::size_t i = from; i <= to; ++i) {
    const Level& lv = levels[i];
    // A band break anywhere past the first queried level splits the range.
    if (i > from && lv.new_band) return false;
    if (lv.skew) return false;
    std::size_t nonzero = 0;
    for (i64 c : lv.row)
      if (c != 0) ++nonzero;
    bool unit = nonzero == 1;
    for (i64 c : lv.row)
      if (c != 0 && c != 1) unit = false;
    if (!unit) return false;
  }
  return true;
}

int ScheduleResult::num_components(double min_fraction, u64 total_ops) const {
  int n = 0;
  for (const auto& g : groups) {
    if (total_ops == 0 ||
        static_cast<double>(g.ops) > min_fraction * static_cast<double>(total_ops))
      ++n;
  }
  return std::max(n, groups.empty() ? 0 : 1);
}

ScheduleResult schedule(const Problem& problem, const Options& opts) {
  ScheduleResult res;
  if (opts.cancel != nullptr && opts.cancel->poll())
    throw Error("job cancelled during scheduling");
  if (problem.statements.empty()) return res;

  // Fusion structure: one group (maxfuse) or dependence-connected
  // components (smartfuse).
  std::vector<std::vector<int>> groups;
  if (opts.fusion == FusionHeuristic::kMaxFuse) {
    std::vector<int> all;
    for (const auto& s : problem.statements) all.push_back(s.id);
    groups.push_back(std::move(all));
  } else {
    // Union-find over dependence edges.
    std::map<int, int> parent;
    std::function<int(int)> find = [&](int x) {
      auto it = parent.find(x);
      if (it == parent.end() || it->second == x) {
        parent[x] = x;
        return x;
      }
      return parent[x] = find(it->second);
    };
    for (const auto& s : problem.statements) find(s.id);
    for (const auto& d : problem.deps) parent[find(d.src)] = find(d.dst);
    std::map<int, std::vector<int>> by_root;
    for (const auto& s : problem.statements)
      by_root[find(s.id)].push_back(s.id);
    for (auto& [_, v] : by_root) groups.push_back(std::move(v));
  }

  // Fused groups are dependence-disjoint: schedule each independently,
  // fanned out on the caller's pool into pre-indexed slots (serial when
  // no pool / one lane — parallel_for runs inline in index order).
  obs::Span sched_span(opts.obs, "sched:groups");
  if (opts.obs != nullptr) {
    opts.obs->add("sched.groups", static_cast<i64>(groups.size()));
    opts.obs->add("sched.statements",
                  static_cast<i64>(problem.statements.size()));
  }
  res.groups.resize(groups.size());
  auto run_group = [&](std::size_t i) {
    // Per-group checkpoint: parallel_for rethrows the first exception at
    // the join, so a mid-schedule cancel surfaces exactly like a serial
    // one (cancelled() only — the poll()s at the boundaries fire the
    // deadline; worker tasks never mutate the token).
    if (opts.cancel != nullptr && opts.cancel->cancelled())
      throw Error("job cancelled during scheduling");
    res.groups[i] = schedule_group(problem, std::move(groups[i]), opts);
  };
  if (opts.pool != nullptr) {
    opts.pool->parallel_for(groups.size(), run_group);
  } else {
    for (std::size_t i = 0; i < groups.size(); ++i) run_group(i);
  }
  // Execution order: by first statement id (ids are first-touch order).
  std::sort(res.groups.begin(), res.groups.end(),
            [](const GroupSchedule& a, const GroupSchedule& b) {
              return a.stmts.front() < b.stmts.front();
            });
  return res;
}

std::vector<ParamAssignment> parameterize_constants(
    const std::vector<i128>& constants, i128 threshold, i128 window) {
  std::vector<ParamAssignment> out;
  std::vector<i128> anchors;
  for (i128 c : constants) {
    ParamAssignment a;
    a.value = c;
    i128 mag = c < 0 ? -c : c;
    if (mag >= threshold) {
      for (std::size_t p = 0; p < anchors.size(); ++p) {
        i128 diff = c - anchors[p];
        if (diff <= window && diff >= -window) {
          a.param = static_cast<int>(p);
          a.offset = diff;
          break;
        }
      }
      if (a.param < 0) {
        a.param = static_cast<int>(anchors.size());
        a.offset = 0;
        anchors.push_back(c);
      }
    }
    out.push_back(a);
  }
  return out;
}

}  // namespace pp::scheduler
