// Pluto-style affine scheduler over the folded DDG (paper §6). Produces,
// per fused statement group, a sequence of schedule levels (rows) with
// permutable-band structure, per-level parallelism, tilability and skewing
// information — the raw material for POLY-PROF's transformation feedback
// (interchange / skew / tile / parallelize / vectorize suggestions and the
// %||ops, %simdops, TileD, Comp. columns of Table 5).
//
// Differences from PluTo proper, by design (see DESIGN.md):
//  * legality of a candidate row is decided by *minimizing* the schedule
//    latency difference over each (bounded) dependence piece with the
//    exact rational simplex — min >= 0 is weak legality, min > 0 carries
//    the dependence (sound for integer points since rational min <= integer
//    min);
//  * candidate rows are drawn from the Pluto cone with small coefficients:
//    unit vectors first (permutations), then ±1/±2 skews — the paper's
//    "we tend to avoid skewing unless it really provides improvements";
//  * dynamic flow dependences always point backward in time, so identity
//    rows are always weakly legal and the search cannot get stuck.
#pragma once

#include "obs/obs.hpp"
#include "poly/dep_relation.hpp"
#include "poly/polyhedron.hpp"
#include "support/cancel.hpp"
#include "support/thread_pool.hpp"

namespace pp::scheduler {

/// One statement to schedule. `domain_pieces` is the folded union.
struct SchedStatement {
  int id = -1;
  std::size_t depth = 0;
  u64 ops = 1;  ///< dynamic operation count (weights fusion metrics)
  std::vector<poly::Polyhedron> domain_pieces;
  /// Identities of the enclosing loops, outermost first (size == depth).
  /// Dependences between two statements are enforced only on their
  /// *shared* loop prefix — beyond it, distributed statement order
  /// satisfies them. When left empty, min(src, dst depth) is assumed
  /// (statements presumed co-nested).
  std::vector<int> loop_path;
};

/// One piece of a dependence relation dst <- src.
struct SchedDepPiece {
  poly::Polyhedron dst_domain;   ///< over dst coordinates
  poly::AffineMap src_fn;        ///< dst coords -> src coords
  bool analyzable = true;        ///< false: label not affine (opaque dep)
};

struct SchedDep {
  int src = -1;
  int dst = -1;
  std::vector<SchedDepPiece> pieces;
};

struct Problem {
  std::vector<SchedStatement> statements;
  std::vector<SchedDep> deps;
};

enum class FusionHeuristic {
  kMaxFuse,    ///< "M": fuse everything into one group
  kSmartFuse,  ///< "S": one group per dependence-connected component
};

struct Options {
  FusionHeuristic fusion = FusionHeuristic::kSmartFuse;
  bool allow_skew = true;
  i64 max_skew_coeff = 2;
  /// Approximate (non-optimal) scheduling — the paper's §10 future-work
  /// scalability lever: skip the candidate search entirely and evaluate
  /// only the identity rows (dependence distances, parallelism, band
  /// structure of the ORIGINAL loop order). Much cheaper, never proposes
  /// interchange/skew.
  bool identity_only = false;
  /// Schedule fused groups in parallel on this pool (null or 1-lane pool
  /// = serial). Groups are dependence-SCC-disjoint, so their searches are
  /// independent; results land in pre-indexed slots and the final
  /// execution-order sort is by statement id — identical for any lane
  /// count.
  support::ThreadPool* pool = nullptr;
  /// Observability session (may be null): schedule() wraps its group
  /// fan-out in a span and counts groups/levels solved.
  obs::Session* obs = nullptr;
  /// Cancellation token (may be null): polled at entry and before each
  /// group's candidate search. A fired token makes schedule() throw
  /// pp::Error("job cancelled during scheduling"), which the region
  /// analyzer catches into an UNANALYZABLE region — the schedule is
  /// all-or-nothing, so there is no partial result to degrade to.
  support::CancelToken* cancel = nullptr;
};

/// One schedule level (a row of the schedule matrix, aligned dimensions).
struct Level {
  std::vector<i64> row;        ///< coefficients, size = group max depth
  bool parallel = false;       ///< zero dependence distance at this level
  bool carries = false;        ///< strictly satisfies some dependence
  bool new_band = false;       ///< starts a new permutable band
  bool skew = false;           ///< row is a skew (not a unit vector)
};

/// Schedule for one fused group of statements.
struct GroupSchedule {
  std::vector<int> stmts;      ///< statement ids, original order
  std::vector<Level> levels;
  bool schedulable = true;     ///< false: opaque deps forced identity
  u64 ops = 0;

  /// Depth of the longest permutable band (the tilable depth).
  int tile_depth() const;
  /// All levels in a single permutable band?
  bool fully_permutable() const;
  bool uses_skew() const;
  /// Any non-innermost parallel level (coarse-grain parallelism)?
  bool has_outer_parallelism() const;
  /// Innermost level parallel (SIMD candidate)?
  bool inner_parallel() const;

  /// Levels `from`..`to` (inclusive) sit inside one permutable band and
  /// are plain unit-vector rows — i.e. the dimensions they scan may be
  /// reordered freely. This is the legality question pp::transform asks
  /// before interchanging or tiling a loop pair.
  bool band_spans(std::size_t from, std::size_t to) const;
};

struct ScheduleResult {
  std::vector<GroupSchedule> groups;  ///< in execution order

  /// Paper Table 5 "Comp.": groups holding more than `min_fraction` of
  /// `total_ops` count as components.
  int num_components(double min_fraction, u64 total_ops) const;
};

ScheduleResult schedule(const Problem& problem, const Options& opts = {});

/// §6 parameterization: replace large constants by parameters, reusing one
/// parameter for every constant within ±window of the parameter's anchor
/// value (the paper uses window s = 20). Returns one assignment per input
/// constant: its parameter index and offset from the anchor.
struct ParamAssignment {
  i128 value;
  int param = -1;   ///< -1: small constant, left alone
  i128 offset = 0;  ///< value = anchor(param) + offset
};
std::vector<ParamAssignment> parameterize_constants(
    const std::vector<i128>& constants, i128 threshold = 512,
    i128 window = 20);

}  // namespace pp::scheduler
