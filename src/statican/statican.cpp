#include "statican/statican.hpp"

#include <functional>
#include <map>
#include <optional>

namespace pp::statican {

namespace {

using ir::Function;
using ir::Instr;
using ir::Module;
using ir::Op;
using ir::Reg;

// Abstract value for the lightweight static dataflow:
//  - kConst: known integer constant;
//  - kAffine: affine in the loop induction variables (coeff per loop id);
//  - kPointer: known base symbol + affine offset. Bases are either a
//    constant address (global) or a function argument.
//  - kOpaque: anything else (loaded values, FP, multi-defined registers).
struct AbsVal {
  enum class Kind { kOpaque, kConst, kAffine } kind = Kind::kOpaque;
  i64 konst = 0;
  std::map<int, i64> coeffs;  ///< loop id -> coefficient (kAffine)
  // Pointer-base attribute, orthogonal to the numeric kind: a value can be
  // simultaneously an affine expression and a valid access base (global
  // address + affine offset, or argument + affine offset).
  bool has_base = false;
  int base_arg = -1;   ///< argument index, or -1 for a global/constant base
  i64 base_addr = 0;

  static AbsVal opaque() { return {}; }
  static AbsVal constant(i64 v) {
    AbsVal a;
    a.kind = Kind::kConst;
    a.konst = v;
    return a;
  }
  bool is_affine_like() const {
    return kind == Kind::kConst || kind == Kind::kAffine;
  }
};

struct Analysis {
  const Module& module;
  const Function& func;
  cfg::FunctionCfg cfg;
  cfg::LoopForest forest;
  std::map<Reg, int> iv_of_reg;        ///< register -> loop id (canonical IV)
  std::map<Reg, std::vector<const Instr*>> defs;
  std::map<int, std::vector<std::pair<int, const Instr*>>> instrs_by_block;
  std::set<char> reasons;
  std::map<int, std::set<char>> block_reasons;  ///< per-block attribution
  std::map<Reg, AbsVal> env;

  void flag(char reason, int bb) {
    reasons.insert(reason);
    block_reasons[bb].insert(reason);
  }

  explicit Analysis(const Module& m, const Function& f)
      : module(m), func(f), cfg(static_cfg(f)), forest(cfg) {}
};

// Which loop (id) contains basic block `bb` innermost; -1 if none.
int innermost_loop(const Analysis& a, int bb) {
  return a.forest.innermost_loop(bb);
}

// Collect definitions of each register.
void collect_defs(Analysis& a) {
  for (const auto& bb : a.func.blocks) {
    for (const auto& in : bb.instrs) {
      bool writes = in.dst != ir::kNoReg && in.op != Op::kStore &&
                    in.op != Op::kBr && in.op != Op::kBrCond &&
                    in.op != Op::kRet;
      if (writes) a.defs[in.dst].push_back(&in);
    }
  }
}

// Identify canonical induction variables: a register with exactly one
// self-increment (addi r, c, r) inside loop L and all other defs outside L.
// A register that qualifies for two different loops is ambiguous (its
// abstract value would conflate distinct iteration spaces) and is dropped.
void find_ivs(Analysis& a) {
  std::map<Reg, std::set<int>> candidates;
  for (const auto& bb : a.func.blocks) {
    int loop = innermost_loop(a, bb.id);
    if (loop < 0) continue;
    for (const auto& in : bb.instrs) {
      if (in.op != Op::kAddI || in.dst != in.a) continue;
      // Check the other defs: all outside this loop's region.
      bool ok = true;
      for (const Instr* d : a.defs[in.dst]) {
        if (d == &in) continue;
        // Find the defining block.
        for (const auto& dbb : a.func.blocks) {
          for (const auto& di : dbb.instrs) {
            if (&di == d &&
                a.forest.loop(loop).blocks.count(dbb.id) != 0)
              ok = false;
          }
        }
      }
      if (ok) candidates[in.dst].insert(loop);
    }
  }
  for (const auto& [r, loops] : candidates)
    if (loops.size() == 1) a.iv_of_reg[r] = *loops.begin();
}

AbsVal lookup(Analysis& a, Reg r) {
  auto iv = a.iv_of_reg.find(r);
  if (iv != a.iv_of_reg.end()) {
    AbsVal v;
    v.kind = AbsVal::Kind::kAffine;
    v.coeffs[iv->second] = 1;
    return v;
  }
  auto it = a.env.find(r);
  return it == a.env.end() ? AbsVal::opaque() : it->second;
}

AbsVal add_vals(const AbsVal& x, const AbsVal& y, int sign) {
  if (x.kind == AbsVal::Kind::kOpaque || y.kind == AbsVal::Kind::kOpaque)
    return AbsVal::opaque();
  if (x.has_base && y.has_base) return AbsVal::opaque();  // ptr + ptr
  AbsVal out;
  out.kind = (x.kind == AbsVal::Kind::kConst && y.kind == AbsVal::Kind::kConst)
                 ? AbsVal::Kind::kConst
                 : AbsVal::Kind::kAffine;
  const AbsVal* based = x.has_base ? &x : (y.has_base ? &y : nullptr);
  if (based) {
    out.has_base = true;
    out.base_arg = based->base_arg;
    out.base_addr = based->base_addr;
  }
  out.konst = x.konst + sign * y.konst;
  out.coeffs = x.coeffs;
  for (const auto& [l, c] : y.coeffs) out.coeffs[l] += sign * c;
  return out;
}

AbsVal mul_vals(const AbsVal& x, const AbsVal& y) {
  // Affine x Const or Const x Affine only; scaling a pointer base is not
  // meaningful, so the base attribute is dropped.
  auto scaled = [](const AbsVal& v, i64 s) {
    AbsVal out = v;
    out.konst *= s;
    for (auto& [l, c] : out.coeffs) c *= s;
    out.has_base = false;
    return out;
  };
  // A known constant scales an affine value even if the constant happens
  // to fall inside the data segment (numeric use of a small integer).
  if (x.kind == AbsVal::Kind::kConst && y.is_affine_like())
    return scaled(y, x.konst);
  if (y.kind == AbsVal::Kind::kConst && x.is_affine_like())
    return scaled(x, y.konst);
  return AbsVal::opaque();
}

// Evaluate one instruction into the abstract environment; flag reasons.
void eval_instr(Analysis& a, const ir::BasicBlock& bb, const Instr& in) {
  int loop = innermost_loop(a, bb.id);
  auto set = [&](AbsVal v) {
    // Multi-defined registers that are not IVs collapse to opaque, unless
    // every def is the same constant-ish shape; keep it simple: if this is
    // a second def with a different kind, go opaque.
    if (a.iv_of_reg.count(in.dst)) return;  // IVs handled separately
    if (a.defs[in.dst].size() > 1) {
      a.env[in.dst] = AbsVal::opaque();
      return;
    }
    a.env[in.dst] = std::move(v);
  };
  switch (in.op) {
    case Op::kConst: {
      AbsVal v = AbsVal::constant(in.imm);
      // A constant inside the data segment doubles as a pointer base.
      if (in.imm >= 0 && in.imm < a.module.data_segment_size) {
        v.has_base = true;
        v.base_arg = -1;
        v.base_addr = in.imm;
      }
      set(v);
      break;
    }
    case Op::kMov:
      set(lookup(a, in.a));
      break;
    case Op::kAdd:
      set(add_vals(lookup(a, in.a), lookup(a, in.b), +1));
      break;
    case Op::kSub:
      set(add_vals(lookup(a, in.a), lookup(a, in.b), -1));
      break;
    case Op::kAddI:
      set(add_vals(lookup(a, in.a), AbsVal::constant(in.imm), +1));
      break;
    case Op::kMul:
      set(mul_vals(lookup(a, in.a), lookup(a, in.b)));
      break;
    case Op::kMulI:
      set(mul_vals(lookup(a, in.a), AbsVal::constant(in.imm)));
      break;
    case Op::kLoad: {
      AbsVal addr = lookup(a, in.a);
      if (!addr.has_base) a.flag('F', bb.id);
      if (loop >= 0 && addr.has_base) {
        // Base defined by a multi-def register inside the loop => 'P'.
        if (a.defs[in.a].size() > 1 && !a.iv_of_reg.count(in.a)) {
          bool defined_in_loop = false;
          for (const auto& dbb : a.func.blocks) {
            if (a.forest.loop(loop).blocks.count(dbb.id) == 0) continue;
            for (const auto& di : dbb.instrs)
              if (di.dst == in.a && &di != &in) defined_in_loop = true;
          }
          if (defined_in_loop) a.flag('P', bb.id);
        }
      }
      set(AbsVal::opaque());  // loaded values are unknown statically
      break;
    }
    case Op::kStore: {
      AbsVal addr = lookup(a, in.a);
      if (!addr.has_base) a.flag('F', bb.id);
      break;
    }
    case Op::kCall:
      a.flag('R', bb.id);
      if (in.dst != ir::kNoReg) set(AbsVal::opaque());
      break;
    case Op::kBrCond: {
      // Affine conditions only: both compare operands must be affine. The
      // compare itself produced a boolean; look through it.
      const Instr* cmp = nullptr;
      for (const Instr* d : a.defs[in.a])
        cmp = d;  // last textual def; fine for single-def compares
      if (!cmp || a.defs[in.a].size() != 1) {
        a.flag('B', bb.id);
        break;
      }
      AbsVal l = lookup(a, cmp->a);
      AbsVal r = lookup(a, cmp->b);
      if (!l.is_affine_like() || !r.is_affine_like()) a.flag('B', bb.id);
      break;
    }
    case Op::kDiv:
    case Op::kRem:
    case Op::kShr:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      set(AbsVal::opaque());
      break;
    default:
      if (in.dst != ir::kNoReg && !ir::op_is_terminator(in.op))
        set(AbsVal::opaque());
      break;
  }
}

// Record every kLoad/kStore with whatever affine structure the abstract
// environment recovered for its address. Uses the final environment, which
// is sound because multi-defined non-IV registers have already collapsed to
// opaque.
void collect_accesses(Analysis& a, FunctionModel& out) {
  for (const auto& bb : a.func.blocks) {
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      const Instr& in = bb.instrs[i];
      if (!ir::op_is_memory(in.op)) continue;
      AccessInfo acc;
      acc.block = bb.id;
      acc.instr = static_cast<int>(i);
      acc.is_store = in.op == Op::kStore;
      AbsVal addr = lookup(a, in.a);
      if (addr.has_base && addr.base_arg >= 0) {
        // Direct argument base: numeric value unknown, but the offset
        // relative to the argument is the constant displacement.
        acc.affine = true;
        acc.base_arg = addr.base_arg;
        acc.offset = in.imm;
      } else if (addr.has_base && addr.is_affine_like()) {
        // Global base: konst already contains the absolute base address.
        acc.affine = true;
        acc.base_arg = -1;
        acc.base_addr = addr.base_addr;
        acc.coeffs = addr.coeffs;
        acc.offset = addr.konst + in.imm;
      }
      out.accesses.push_back(std::move(acc));
    }
  }
}

// Recover the IV value range of each canonical counted loop: `lo` from the
// single out-of-loop kConst def, the step from the in-loop self-increment,
// `hi` from a header guard `brcond (cmplt|cmple iv, n)` with a constant
// bound and an exiting target. `hi` is widened by one step so the IV's exit
// value (visible to code after the loop) stays inside the range; the range
// is an over-approximation of the values the IV takes, which is all a
// Banerjee-style test needs.
void recover_bounds(Analysis& a, FunctionModel& out) {
  for (const auto& [reg, loopid] : a.iv_of_reg) {
    const cfg::Loop& loop = a.forest.loop(loopid);
    const Instr* self_inc = nullptr;
    i64 step = 0;
    for (int blk : loop.blocks) {
      for (const auto& in : a.func.block(blk).instrs) {
        if (in.op == Op::kAddI && in.dst == reg && in.a == reg) {
          self_inc = &in;
          step = in.imm;
        }
      }
    }
    if (!self_inc || step <= 0) continue;
    const Instr* init = nullptr;
    int other_defs = 0;
    for (const Instr* d : a.defs[reg]) {
      if (d == self_inc) continue;
      ++other_defs;
      init = d;
    }
    if (other_defs != 1 || init->op != Op::kConst) continue;
    const auto& hdr = a.func.block(loop.header);
    if (hdr.instrs.empty()) continue;
    const Instr& t = hdr.instrs.back();
    if (t.op != Op::kBrCond || a.defs[t.a].size() != 1) continue;
    const Instr* cmp = a.defs[t.a][0];
    if ((cmp->op != Op::kCmpLt && cmp->op != Op::kCmpLe) || cmp->a != reg)
      continue;
    AbsVal bound = lookup(a, cmp->b);
    if (bound.kind != AbsVal::Kind::kConst) continue;
    bool exits = loop.blocks.count(static_cast<int>(t.imm)) == 0 ||
                 loop.blocks.count(static_cast<int>(t.imm2)) == 0;
    if (!exits) continue;
    i64 hi = (cmp->op == Op::kCmpLt ? bound.konst - 1 : bound.konst) + step;
    LoopBounds b;
    b.known = true;
    b.lo = init->imm;
    b.hi = std::max(b.lo, hi);
    out.bounds[loopid] = b;
  }
}

}  // namespace

cfg::FunctionCfg static_cfg(const ir::Function& f) {
  cfg::FunctionCfg out;
  out.func = f.id;
  out.entry = 0;
  for (const auto& bb : f.blocks) {
    out.blocks.add_node(bb.id);
    if (bb.instrs.empty()) continue;
    const Instr& t = bb.instrs.back();
    if (t.op == Op::kBr) {
      out.blocks.add_edge(bb.id, static_cast<int>(t.imm));
    } else if (t.op == Op::kBrCond) {
      out.blocks.add_edge(bb.id, static_cast<int>(t.imm));
      out.blocks.add_edge(bb.id, static_cast<int>(t.imm2));
    }
  }
  return out;
}

FunctionVerdict analyze_function(const ir::Module& m, const ir::Function& f) {
  return model_function(m, f).verdict;
}

FunctionModel model_function(const ir::Module& m, const ir::Function& f) {
  Analysis a(m, f);
  collect_defs(a);
  find_ivs(a);

  // Seed: pointer-valued arguments. Any argument *may* be a pointer; two
  // or more arguments used as access bases cannot be proven distinct.
  for (int arg = 0; arg < f.num_args; ++arg) {
    AbsVal v;
    v.kind = AbsVal::Kind::kOpaque;  // unknown numeric value...
    v.has_base = true;               // ...but usable as an access base
    v.base_arg = arg;
    a.env[arg] = v;
  }

  // CFG complexity: more than one return, or a loop with several distinct
  // exit targets (break-like control).
  int rets = 0;
  for (const auto& bb : f.blocks)
    for (const auto& in : bb.instrs)
      if (in.op == Op::kRet) ++rets;
  if (rets > 1) a.reasons.insert('C');
  for (const auto& loop : a.forest.loops()) {
    // Count exiting EDGES, not distinct targets: two breaks converging on
    // the same join block are still break-like control flow.
    std::set<std::pair<int, int>> exits;
    for (int b : loop.blocks)
      for (int s : a.cfg.blocks.succs(b))
        if (loop.blocks.count(s) == 0) exits.insert({b, s});
    if (exits.size() > 1) a.flag('C', loop.header);
  }

  // Single forward pass (registers are near-SSA in builder output; multi-
  // defined registers other than IVs collapse to opaque conservatively).
  for (const auto& bb : f.blocks)
    for (const auto& in : bb.instrs) eval_instr(a, bb, in);

  // Aliasing: memory accessed through two or more distinct argument bases.
  std::set<int> arg_bases;
  std::set<int> arg_access_blocks;
  for (const auto& bb : f.blocks) {
    for (const auto& in : bb.instrs) {
      if (!ir::op_is_memory(in.op)) continue;
      AbsVal addr = lookup(a, in.a);
      if (addr.has_base && addr.base_arg >= 0) {
        arg_bases.insert(addr.base_arg);
        arg_access_blocks.insert(bb.id);
      }
    }
  }
  if (arg_bases.size() >= 2) {
    a.reasons.insert('A');
    for (int blk : arg_access_blocks) a.block_reasons[blk].insert('A');
  }

  FunctionVerdict v;
  v.func = f.id;
  v.reasons = a.reasons;
  v.affine_modeled = a.reasons.empty();

  // Subregion (per-loop) verdicts: a loop is modelable when no block of
  // its region carries a failure reason. The deepest modelable nest is the
  // tallest loop subtree that is clean all the way down — the paper's
  // "1D or 2D loop nests" Polly still managed.
  v.num_loops = static_cast<int>(a.forest.loops().size());
  auto region_clean = [&](const cfg::Loop& loop) {
    for (int blk : loop.blocks)
      if (a.block_reasons.count(blk) && !a.block_reasons.at(blk).empty())
        return false;
    return true;
  };
  std::function<int(const cfg::Loop&)> height = [&](const cfg::Loop& loop) {
    int best = 0;
    for (int c : loop.children)
      best = std::max(best, height(a.forest.loop(c)));
    return best + 1;
  };
  for (const auto& loop : a.forest.loops()) {
    if (!region_clean(loop)) continue;
    ++v.num_modeled_loops;
    // A clean region implies clean sub-loops, so the subtree height is
    // the modeled nest depth.
    v.max_modeled_nest_depth =
        std::max(v.max_modeled_nest_depth, height(loop));
  }

  FunctionModel out;
  out.verdict = v;
  collect_accesses(a, out);
  recover_bounds(a, out);
  out.block_reasons = a.block_reasons;
  for (auto& acc : out.accesses) {
    auto it = out.block_reasons.find(acc.block);
    bool clean = it == out.block_reasons.end() || it->second.empty();
    acc.modeled = acc.affine && clean;
    // Classification lattice: the block's reason set separates
    // "data-dependent but structurally affine" (B/C only — Klimov's
    // weakly-dynamic shape) from "statically hopeless" (R/F/A/P).
    if (!acc.affine) {
      acc.cls = AccessClass::kDynamicRequired;
    } else if (clean) {
      acc.cls = AccessClass::kStaticExact;
    } else {
      bool soft = true;
      for (char rsn : it->second)
        if (rsn != 'B' && rsn != 'C') soft = false;
      acc.cls = soft ? AccessClass::kWeaklyDynamic
                     : AccessClass::kDynamicRequired;
    }
  }
  return out;
}

const char* access_class_name(AccessClass c) {
  switch (c) {
    case AccessClass::kStaticExact: return "static-exact";
    case AccessClass::kWeaklyDynamic: return "weakly-dynamic";
    case AccessClass::kDynamicRequired: return "dynamic-required";
  }
  return "?";
}

std::set<char> analyze_region(const ir::Module& m,
                              const std::vector<int>& funcs) {
  std::set<char> out;
  for (int fid : funcs) {
    FunctionVerdict v =
        analyze_function(m, m.functions[static_cast<std::size_t>(fid)]);
    out.insert(v.reasons.begin(), v.reasons.end());
  }
  return out;
}

std::string reasons_str(const std::set<char>& reasons) {
  // Paper order: R C B F A P.
  static const char kOrder[] = {'R', 'C', 'B', 'F', 'A', 'P'};
  std::string s;
  for (char c : kOrder)
    if (reasons.count(c)) s.push_back(c);
  return s.empty() ? "-" : s;
}

}  // namespace pp::statican
