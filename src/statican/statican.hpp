// The static baseline of the paper's Experiment II: a Polly-like affine
// region modeler that works purely on the static IR (no execution). It
// attempts to prove a function is a static-control affine program and,
// when it fails, reports the paper's reason taxonomy:
//   R  unhandled function call
//   C  complex CFG (multiple returns / multi-exit loops)
//   B  non-affine loop bound or non-affine conditional
//   F  non-affine access function (includes pointer indirection)
//   A  unhandled possible pointer aliasing
//   P  base pointer not loop invariant
// This is what a static polyhedral compiler must reject, exactly the
// contrast POLY-PROF's dynamic analysis is designed to overcome.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cfg/loop_forest.hpp"
#include "ir/ir.hpp"

namespace pp::statican {

struct FunctionVerdict {
  int func = -1;
  bool affine_modeled = false;  ///< whole function modeled as affine SCoP
  std::set<char> reasons;       ///< failure letters (empty when modeled)
  /// Depth of the deepest loop nest whose whole region is free of failure
  /// reasons — the paper's "Polly was able to model some smaller
  /// subregions, 1D or 2D loop nests, in most benchmarks". 0 when no loop
  /// is modelable.
  int max_modeled_nest_depth = 0;
  int num_loops = 0;            ///< loops in the function's static forest
  int num_modeled_loops = 0;    ///< loops whose region carries no reason
};

/// Static (exact) CFG of a function — every edge in the code, executed or
/// not, unlike the dynamic CFGs of stage 1.
cfg::FunctionCfg static_cfg(const ir::Function& f);

/// Three-way classification of a memory access, the lattice pp::verify's
/// exact dependence analysis refines (Klimov's weakly-dynamic programs):
///   kStaticExact     affine access in a reason-free block — a candidate
///                    for provably exact static dependence information
///                    (verify::exact downgrades candidates whose pairwise
///                    dependence questions the integer test cannot decide)
///   kWeaklyDynamic   affine access whose environment is data-dependent
///                    but structurally sound: the block carries only
///                    B (non-affine bound/conditional) or C (complex CFG)
///   kDynamicRequired non-affine address, or a block with R/F/A/P — only
///                    dynamic profiling can see its dependences
enum class AccessClass : std::uint8_t {
  kStaticExact,
  kWeaklyDynamic,
  kDynamicRequired,
};

const char* access_class_name(AccessClass c);

/// One statically recovered memory access (kLoad / kStore). The address is
/// modeled in *IV-value space*: addr = base + sum(coeffs[l] * iv_l) + offset
/// where iv_l is the runtime VALUE of loop l's canonical induction variable
/// (not its iteration count). For a global base the base address is folded
/// into `offset` (absolute addressing); for an argument base the offset is
/// relative to the unknown argument value.
struct AccessInfo {
  int block = -1;            ///< basic block id
  int instr = -1;            ///< index within the block
  bool is_store = false;
  /// Address fully recovered as base + affine(IVs). Accesses through
  /// non-affine arithmetic (or lost bases) have affine == false.
  bool affine = false;
  /// Affine AND the enclosing block carries no R/C/B/F/A/P reason — the
  /// access participates in static dependence testing.
  bool modeled = false;
  int base_arg = -1;         ///< argument index, or -1 for a global base
  i64 base_addr = 0;         ///< global base address (base_arg < 0)
  std::map<int, i64> coeffs; ///< loop id -> byte coefficient per IV value
  i64 offset = 0;            ///< constant byte term (absolute for globals)
  /// Static classification (see AccessClass). Computed purely from
  /// `affine` and the enclosing block's reasons — the exact dependence
  /// pass may further downgrade kStaticExact to kWeaklyDynamic.
  AccessClass cls = AccessClass::kDynamicRequired;
};

/// Recovered value range of a loop's canonical IV, inclusive. `hi` is
/// widened by one step so uses of the IV *after* the loop (its exit value)
/// stay inside the range; bounds are only a sound over-approximation of the
/// values the IV takes, which is all Banerjee-style testing needs.
struct LoopBounds {
  bool known = false;
  i64 lo = 0;
  i64 hi = 0;
};

/// Full static model of one function: the verdict plus everything a
/// dependence tester needs (access functions, IV ranges, per-block failure
/// attribution).
struct FunctionModel {
  FunctionVerdict verdict;
  std::vector<AccessInfo> accesses;           ///< program order
  std::map<int, LoopBounds> bounds;           ///< loop id -> IV value range
  std::map<int, std::set<char>> block_reasons;
};

/// Try to model one function as an affine program.
FunctionVerdict analyze_function(const ir::Module& m, const ir::Function& f);

/// Like analyze_function, but also exposes the recovered access functions
/// and loop bounds (the raw material for pp::verify's static dependence
/// tester).
FunctionModel model_function(const ir::Module& m, const ir::Function& f);

/// Region verdict: union of the verdicts of all functions in the region
/// (the paper inlines kernels so Polly sees the same region; calls to
/// functions outside the set still count as 'R').
std::set<char> analyze_region(const ir::Module& m,
                              const std::vector<int>& funcs);

/// "RCBF"-style rendering in the paper's canonical letter order.
std::string reasons_str(const std::set<char>& reasons);

}  // namespace pp::statican
