// The static baseline of the paper's Experiment II: a Polly-like affine
// region modeler that works purely on the static IR (no execution). It
// attempts to prove a function is a static-control affine program and,
// when it fails, reports the paper's reason taxonomy:
//   R  unhandled function call
//   C  complex CFG (multiple returns / multi-exit loops)
//   B  non-affine loop bound or non-affine conditional
//   F  non-affine access function (includes pointer indirection)
//   A  unhandled possible pointer aliasing
//   P  base pointer not loop invariant
// This is what a static polyhedral compiler must reject, exactly the
// contrast POLY-PROF's dynamic analysis is designed to overcome.
#pragma once

#include <set>
#include <string>

#include "cfg/loop_forest.hpp"
#include "ir/ir.hpp"

namespace pp::statican {

struct FunctionVerdict {
  int func = -1;
  bool affine_modeled = false;  ///< whole function modeled as affine SCoP
  std::set<char> reasons;       ///< failure letters (empty when modeled)
  /// Depth of the deepest loop nest whose whole region is free of failure
  /// reasons — the paper's "Polly was able to model some smaller
  /// subregions, 1D or 2D loop nests, in most benchmarks". 0 when no loop
  /// is modelable.
  int max_modeled_nest_depth = 0;
  int num_loops = 0;            ///< loops in the function's static forest
  int num_modeled_loops = 0;    ///< loops whose region carries no reason
};

/// Static (exact) CFG of a function — every edge in the code, executed or
/// not, unlike the dynamic CFGs of stage 1.
cfg::FunctionCfg static_cfg(const ir::Function& f);

/// Try to model one function as an affine program.
FunctionVerdict analyze_function(const ir::Module& m, const ir::Function& f);

/// Region verdict: union of the verdicts of all functions in the region
/// (the paper inlines kernels so Polly sees the same region; calls to
/// functions outside the set still count as 'R').
std::set<char> analyze_region(const ir::Module& m,
                              const std::vector<int>& funcs);

/// "RCBF"-style rendering in the paper's canonical letter order.
std::string reasons_str(const std::set<char>& reasons);

}  // namespace pp::statican
