#include "core/pipeline.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "statican/statican.hpp"
#include "verify/exact.hpp"
#include "verify/oracle.hpp"
#include "verify/verifier.hpp"
#include "vm/event_ring.hpp"
#include "vm/event_validator.hpp"

namespace pp::core {

namespace {

/// Fans VM events out to several observers (stage 1 runs the CFG builder
/// and the CCT side by side).
class TeeObserver : public vm::Observer {
 public:
  explicit TeeObserver(std::vector<vm::Observer*> obs) : obs_(std::move(obs)) {}
  void on_local_jump(int func, int dst_bb) override {
    for (auto* o : obs_) o->on_local_jump(func, dst_bb);
  }
  void on_call(vm::CodeRef site, int callee) override {
    for (auto* o : obs_) o->on_call(site, callee);
  }
  void on_return(int callee, vm::CodeRef into) override {
    for (auto* o : obs_) o->on_return(callee, into);
  }
  void on_instr(const vm::InstrEvent& ev) override {
    for (auto* o : obs_) o->on_instr(ev);
  }

 private:
  std::vector<vm::Observer*> obs_;
};

}  // namespace

ProfileResult Pipeline::run(const PipelineOptions& opts) {
  ProfileResult res;
  res.module = &module_;
  res.cancel = opts.cancel;
  if (opts.observe) res.obs = std::make_shared<obs::Session>(true);
  obs::Session* ob = res.obs.get();

  // Chaos service faults fire the job's CancelToken at a structural point
  // (a stage boundary; the mid-fold one is armed on the sink below), so
  // cancellation paths are exercised deterministically — the partial
  // report is byte-identical at any thread count, unlike a wall-clock
  // cancel. No-ops without a token.
  auto chaos_cancel_at = [&](vm::ServiceFault f) {
    if (opts.chaos.service == f && opts.cancel != nullptr)
      opts.cancel->cancel();
  };
  // Stage-boundary checkpoint: a fired (or deadline-expired) token stops
  // the pipeline here, with everything earlier stages produced kept and
  // the stop diagnosed — the same degrade-don't-die shape as a trap.
  auto cancelled_at = [&](support::Stage stage, const char* boundary) {
    if (opts.cancel == nullptr || !opts.cancel->poll()) return false;
    res.truncated = true;
    res.cancelled = true;
    res.diagnostics.warn(stage,
                         std::string("job cancelled (") +
                             opts.cancel->reason_name() +
                             ") — pipeline stopped at the " + boundary +
                             " boundary");
    return true;
  };

  // IR verification BEFORE any replay: an ill-formed module is rejected
  // with the full structured issue list instead of trapping (or worse,
  // silently misbehaving) somewhere mid-profile.
  if (opts.verify_module) {
    obs::Span verify_span(ob, "stage:verify");
    verify::VerifyReport vr = verify::verify_module(module_);
    if (!vr.ok()) {
      res.truncated = true;
      vr.to_log(res.diagnostics);
      res.diagnostics.error(
          support::Stage::kVerify,
          "module rejected by the IR verifier (" +
              std::to_string(vr.issues.size()) +
              " issue(s)) — nothing profiled; set "
              "PipelineOptions::verify_module=false to bypass");
      return res;
    }
  }

  // Setup validation BEFORE any replay: a bad entry must not cost a full
  // stage-1 run only to throw afterwards.
  const ir::Function* entry = module_.find_function(opts.entry);
  if (entry == nullptr) {
    res.truncated = true;
    res.diagnostics.error(support::Stage::kSetup,
                          "entry function '" + opts.entry +
                              "' not found — nothing profiled");
    return res;
  }
  if (static_cast<int>(opts.args.size()) != entry->num_args) {
    res.truncated = true;
    res.diagnostics.error(support::Stage::kSetup,
                          "entry '" + opts.entry + "' takes " +
                              std::to_string(entry->num_args) +
                              " argument(s), got " +
                              std::to_string(opts.args.size()) +
                              " — nothing profiled");
    return res;
  }

  support::RunBudget budget = opts.budget;
  budget.arm();
  u64 max_steps = opts.max_steps;
  if (budget.vm_steps != 0) max_steps = std::min(max_steps, budget.vm_steps);

  // One pool for every parallel stage of the run; shared with the result
  // so the feedback stage fans out on the same lanes. A caller-provided
  // pool (pp::service: one pool for all jobs) is used as-is.
  std::shared_ptr<support::ThreadPool> pool =
      opts.pool != nullptr ? opts.pool
                           : std::make_shared<support::ThreadPool>(opts.threads);
  res.pool = pool;
  // With 2+ lanes the VM runs on a producer thread and streams events
  // through a bounded ring; the downstream observer chain executes on this
  // thread and sees the exact serial event order.
  const bool overlap_replay = !pool->serial();

  // Stage-1 boundary: a pre-cancelled job (or the chaos cancel-at-control
  // fault) profiles nothing — the result is just the diagnosis.
  chaos_cancel_at(vm::ServiceFault::kCancelAtControl);
  if (cancelled_at(support::Stage::kControl, "stage-1")) return res;

  // Stage 1 (Instrumentation I): dynamic control structure + CCT. The
  // validator guarantees the builders only ever see a well-formed prefix;
  // a VM trap leaves the prefix collected so far usable.
  cfg::DynamicCfgBuilder dyn;
  obs::Span control_span(ob, "stage:control");
  {
    vm::Machine machine(module_);
    TeeObserver tee({&dyn, &res.cct});
    vm::EventValidator validator(module_, &tee, &res.diagnostics,
                                 support::Stage::kControl);
    try {
      vm::RunResult rr;
      if (overlap_replay) {
        rr = vm::replay_threaded(machine, opts.entry, opts.args, max_steps,
                                 validator, {}, 8, 4096, ob, opts.cancel);
      } else {
        machine.set_observer(&validator);
        machine.set_cancel(opts.cancel);
        rr = machine.run(opts.entry, opts.args, max_steps);
      }
      if (rr.truncated) {
        res.truncated = true;
        res.diagnostics.warn(support::Stage::kControl,
                             "stage 1 replay truncated: " + rr.truncate_reason);
      }
    } catch (const Error& e) {
      res.truncated = true;
      res.diagnostics.error(
          support::Stage::kControl,
          std::string("stage 1 VM trap: ") + e.what() +
              " — control structure built from the partial trace");
    }
    if (!validator.ok()) res.truncated = true;
  }
  try {
    res.control = cfg::ControlStructure::build(dyn, {entry->id});
  } catch (const Error& e) {
    res.truncated = true;
    res.diagnostics.error(
        support::Stage::kControl,
        std::string("control-structure construction failed: ") + e.what() +
            " — stage 2 skipped, CCT retained");
    return res;
  }
  control_span.end();

  // Stage-2 boundary: a cancel observed here (client, deadline, or the
  // chaos cancel-at-ddg fault) keeps the whole stage-1 result — control
  // structure and CCT — and skips the DDG entirely.
  chaos_cancel_at(vm::ServiceFault::kCancelAtDdg);
  if (cancelled_at(support::Stage::kDdg, "stage-2")) return res;

  // Stage 2+3 (Instrumentation II + folding): DDG streamed into folders.
  // Observer chain: Machine -> chaos (tests only) -> validator -> builder,
  // so injected faults hit the validator exactly like real corruption
  // would, and the builder never sees a malformed event.
  obs::Span ddg_span(ob, "stage:ddg");
  fold::FoldingSink sink(opts.fold);
  sink.set_diagnostics(&res.diagnostics);
  sink.set_pool(pool.get());
  sink.set_budget(&budget);
  sink.set_obs(ob);
  sink.set_cancel(opts.cancel);
  // Deadline-mid-fold chaos: expire the token at a seed-derived merge
  // position — structural, so the degraded suffix is identical at any
  // thread count.
  if (opts.chaos.service == vm::ServiceFault::kDeadlineMidFold)
    sink.set_chaos_deadline_at(1 + opts.chaos.seed % 4);
  ddg::DdgOptions ddg_opts = opts.ddg;
  ddg_opts.budget = &budget;
  ddg_opts.diag = &res.diagnostics;
  // The transformation engine's legality checks (fusion distances, sunk
  // loads) need WAR/WAW edges; anti/output tracking in turn vetoes
  // selective instrumentation and path compaction below.
  if (opts.apply_transforms) ddg_opts.track_anti_output = true;
  // Trace compaction: the builder itself vetoes incompatible
  // configurations (anti/output tracking, per-event budget caps), so the
  // flag can be forwarded unconditionally.
  ddg_opts.path_compaction = opts.path_compaction;
  // Selective instrumentation: compute the dependence-free plan and hand
  // it to the builder. Declared at this scope — the builder keeps a
  // pointer for the whole replay. Deliberately NOT observed (no span, no
  // counter): the observed report must stay byte-identical to a full run.
  ddg::SelectivePlan splan;
  if (opts.selective_instrumentation && !ddg_opts.track_anti_output &&
      budget.shadow_pages == 0) {
    splan = verify::exact::compute_selective_plan(module_);
    if (splan.total_sites() > 0) ddg_opts.selective = &splan;
  }
  ddg::DdgBuilder builder(module_, res.control, &sink, ddg_opts);
  {
    vm::Machine machine(module_);
    vm::EventValidator validator(module_, &builder, &res.diagnostics,
                                 support::Stage::kDdg);
    // The chaos harness always sits directly behind the Machine. In the
    // overlapped replay it runs on the producer thread in front of the
    // ring writer; its injection point is event-count-seeded, so faults
    // land on the same event ordinal as in the serial chain. With no
    // event fault configured (every production run) the wrapper is pure
    // pass-through, so it is skipped — one fewer virtual hop per event.
    std::optional<vm::ChaosObserver> chaos;
    const bool chaos_live = opts.chaos.kind != vm::FaultKind::kNone;
    bool trapped = false;
    try {
      vm::RunResult rr;
      if (overlap_replay) {
        rr = vm::replay_threaded(machine, opts.entry, opts.args, max_steps,
                                 validator,
                                 [&](vm::Observer& writer) -> vm::Observer* {
                                   if (!chaos_live) return &writer;
                                   chaos.emplace(&writer, opts.chaos);
                                   return &*chaos;
                                 },
                                 8, 4096, ob, opts.cancel);
      } else {
        if (chaos_live) {
          chaos.emplace(&validator, opts.chaos);
          machine.set_observer(&*chaos);
        } else {
          machine.set_observer(&validator);
        }
        machine.set_cancel(opts.cancel);
        rr = machine.run(opts.entry, opts.args, max_steps);
      }
      res.stats = rr.stats;
      res.exit_value = rr.exit_value;
      if (rr.truncated) {
        res.truncated = true;
        res.diagnostics.warn(support::Stage::kDdg,
                             "stage 2 replay truncated: " + rr.truncate_reason);
      }
    } catch (const Error& e) {
      // Partial stats survive the unwind; the DDG holds every event up to
      // the trap.
      res.stats = machine.stats();
      res.truncated = true;
      trapped = true;
      res.diagnostics.error(support::Stage::kDdg,
                            std::string("stage 2 VM trap: ") + e.what() +
                                " — DDG truncated at last well-formed event");
    }
    // Flush any armed compressed run — the stream may have ended (or
    // trapped, or been cancelled) mid-run; the flush bulk-replays the
    // swallowed iterations so the builder state matches the reference
    // interpretation of the same event prefix exactly.
    builder.flush_compaction();
    if (!validator.ok()) {
      res.truncated = true;  // the validator already logged the rejection
    } else if (!trapped && validator.instr_events() < res.stats.instructions) {
      // Silent truncation: the instrumentation layer stopped forwarding
      // without producing a malformed event.
      res.truncated = true;
      res.diagnostics.warn(
          support::Stage::kDdg,
          "instrumentation stream silently truncated: observed " +
              std::to_string(validator.instr_events()) + " of " +
              std::to_string(res.stats.instructions) +
              " retired instructions");
    }
    if (builder.budget_exhausted()) res.truncated = true;
  }
  builder.materialize_skipped_pages();
  res.statements = builder.statements();
  res.ddg_dependences = builder.dependences_emitted();
  res.shadow_pages = builder.shadow().pages_live();
  res.coord_pool_words = builder.coord_pool().size_words();
  if (ob != nullptr && ob->enabled()) {
    // Stage-2 finals. All of these are functions of the (deterministic)
    // event stream alone, so they are stable across thread counts.
    ob->set("vm.instructions", static_cast<i64>(res.stats.instructions));
    ob->set("ddg.instr_events",
            static_cast<i64>(builder.instr_events_seen()));
    ob->set("ddg.dependences", static_cast<i64>(res.ddg_dependences));
    ob->set("ddg.shadow_pages", static_cast<i64>(res.shadow_pages));
    ob->set("ddg.coord_pool_words", static_cast<i64>(res.coord_pool_words));
    if (const vm::PathCacheStats* ps = builder.path_stats()) {
      ob->set("vm.path_hits", static_cast<i64>(ps->path_hits));
      ob->set("vm.path_bailouts", static_cast<i64>(ps->path_bailouts));
      ob->set("vm.events_compressed",
              static_cast<i64>(ps->events_compressed));
    }
  }
  ddg_span.end();
  obs::Span fold_span(ob, "stage:fold");
  sink.mark_degraded(builder.degraded_statements());
  // Fold boundary: no early return here — finalize() itself observes the
  // token at every merge position and degrades the unfolded suffix, so
  // firing the chaos fault (or arriving with a fired token) still yields
  // a complete, well-formed FoldedProgram.
  chaos_cancel_at(vm::ServiceFault::kCancelAtFold);
  try {
    res.program = sink.finalize(res.statements);
    if (budget.pieces_exceeded(budget.pieces_charged())) res.truncated = true;
  } catch (const Error& e) {
    res.truncated = true;
    res.diagnostics.error(support::Stage::kFold,
                          std::string("folding failed: ") + e.what() +
                              " — polyhedral DDG unavailable");
    res.program = fold::FoldedProgram{};
    res.program.total_dynamic_ops = res.statements.total_executions();
  }

  // Dynamic schedule tree, weighted by per-statement dynamic ops.
  for (const auto& s : res.statements.all())
    res.schedule_tree.insert(s.context, s.executions);
  fold_span.end();

  // Transformation engine (close the loop): plan the rewrites the profile
  // justifies, apply each to a copy of the module, and A/B-measure under
  // the engine's cost model. A truncated profile plans from incomplete
  // dependences, which would be unsound — skip with a diagnosed reason.
  if (opts.apply_transforms) {
    obs::Span tr_span(ob, "stage:transform");
    if (res.truncated) {
      res.transform.ran = true;
      res.transform.skipped_reason =
          "profile truncated — dependence information incomplete";
    } else {
      try {
        transform::Options topts = opts.transform;
        topts.cancel = opts.cancel;
        topts.pool = pool.get();
        res.transform = transform::run(module_, res.program, res.control,
                                       opts.entry, opts.args, topts);
      } catch (const Error& e) {
        res.transform = transform::EngineReport{};
        res.transform.ran = true;
        res.transform.skipped_reason =
            std::string("engine fault: ") + e.what();
        res.diagnostics.error(support::Stage::kFeedback,
                              std::string("transformation engine failed: ") +
                                  e.what() + " — section degraded");
      }
    }
    tr_span.end();
  }

  // Feedback boundary: run() is done, but the feedback stage lives in
  // full_report/analyze — record the cancel here so they (and the caller)
  // see a flagged, diagnosed result. Also catches a token that fired
  // mid-fold or mid-replay without hitting an earlier checkpoint.
  chaos_cancel_at(vm::ServiceFault::kCancelAtFeedback);
  if (opts.cancel != nullptr && opts.cancel->poll() && !res.cancelled) {
    res.truncated = true;
    res.cancelled = true;
    res.diagnostics.warn(support::Stage::kFeedback,
                         std::string("job cancelled (") +
                             opts.cancel->reason_name() +
                             ") — feedback stage will degrade: regions "
                             "unanalyzable, oracle skipped");
  }

  return res;
}

std::vector<feedback::Region> ProfileResult::hot_regions(
    double min_fraction, int depth) const {
  // Group statements by the subtree in which their interprocedural context
  // first leaves the entry function's straight-line code: the first
  // context element that is a loop / recursive component, or a block of a
  // *callee* (a call site). The paper's regions are exactly such call
  // sites ("facetrain.c:25" is the whole bpnn_train call) or outermost
  // loop nests. Remaining loop-free entry-function statements group per
  // function.
  struct Group {
    std::vector<int> stmts;
    u64 ops = 0;
    std::set<int> funcs;
    std::string name;
  };
  int entry_func = program.statements.empty()
                       ? -1
                       : program.statements.front().meta.code.func;
  std::map<std::vector<iiv::CtxElem>, Group> groups;
  for (const auto& fs : program.statements) {
    const auto& s = fs.meta;
    std::vector<iiv::CtxElem> key;
    bool found = false;
    bool is_loop_region = false;
    int boundaries = 0;
    int last_func = entry_func;
    for (const auto& part : s.context.parts) {
      for (const auto& e : part) {
        key.push_back(e);
        bool boundary = false;
        if (e.kind != iiv::CtxElem::Kind::kBlock) {
          boundary = true;
          is_loop_region = true;
        } else if (e.func != last_func) {  // crossed into a callee
          boundary = true;
          is_loop_region = false;
          last_func = e.func;
        }
        if (boundary && ++boundaries >= depth) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    // The region is the whole call: normalize the final (cutting) element
    // to the callee identity rather than whichever of its blocks the
    // statement happens to sit in. Intermediate crossing elements stay raw
    // — they ARE the call-site distinction (which caller block invoked the
    // next level).
    if (found && !is_loop_region)
      key.back() = iiv::CtxElem::block(key.back().func, -1);
    if (!found) {
      // Straight-line entry-function code: group per function.
      key.clear();
      key.push_back(iiv::CtxElem::block(s.code.func, -1));
    }
    Group& g = groups[key];
    g.stmts.push_back(s.id);
    g.ops += s.executions;
    g.funcs.insert(s.code.func);
    if (g.name.empty() && module) {
      // Name the region after the function owning the region's root
      // element (the callee for call-site regions, the loop's function
      // for loop regions).
      int name_func = found ? key.back().func : s.code.func;
      if (name_func < 0) name_func = s.code.func;
      const auto& f = module->functions[static_cast<std::size_t>(name_func)];
      std::string file = f.source_file.empty() ? f.name : f.source_file;
      g.name = file;
      if (s.line) g.name += ":" + std::to_string(s.line);
      g.name += " (" + f.name + ")";
      if (is_loop_region) {
        const auto& outer = key.back();
        g.name += outer.kind == iiv::CtxElem::Kind::kComp
                      ? " [recursive]"
                      : " [loop L" + std::to_string(outer.id) + "]";
      } else if (found) {
        g.name += " [call]";
      }
    }
  }

  u64 total = program.total_dynamic_ops;
  std::vector<feedback::Region> out;
  for (auto& [key, g] : groups) {
    if (static_cast<double>(g.ops) <
        min_fraction * static_cast<double>(total))
      continue;
    feedback::Region r;
    r.name = g.name.empty() ? "region" : g.name;
    r.stmts = g.stmts;
    r.interprocedural = g.funcs.size() > 1;
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [&](const feedback::Region& a, const feedback::Region& b) {
              u64 wa = 0, wb = 0;
              for (int id : a.stmts) wa += program.stmt(id).meta.executions;
              for (int id : b.stmts) wb += program.stmt(id).meta.executions;
              return wa > wb;
            });
  return out;
}

feedback::Region ProfileResult::whole_program() const {
  feedback::Region r;
  r.name = "<whole program>";
  std::set<int> funcs;
  for (const auto& s : program.statements) {
    r.stmts.push_back(s.meta.id);
    funcs.insert(s.meta.code.func);
  }
  r.interprocedural = funcs.size() > 1;
  return r;
}

feedback::RegionMetrics ProfileResult::analyze(
    const feedback::Region& region,
    const feedback::AnalyzeOptions& opts) const {
  // Hand the profile's pool to the scheduler (fused groups fan out) unless
  // the caller pinned one explicitly.
  feedback::AnalyzeOptions o = opts;
  if (o.sched.pool == nullptr && pool != nullptr) o.sched.pool = pool.get();
  if (o.sched.obs == nullptr && obs != nullptr) o.sched.obs = obs.get();
  if (o.sched.cancel == nullptr && cancel != nullptr) o.sched.cancel = cancel;
  // Per-region isolation: one region's feedback fault must not take down
  // the report for every other region. Cancelled jobs degrade every
  // region the same way — deterministically, whatever the thread count.
  auto degraded = [&](const std::string& reason) {
    feedback::RegionMetrics m;
    m.region = region;
    m.analyzable = false;
    m.schedulable = false;
    m.degrade_reason = reason;
    for (int id : region.stmts) {
      if (id >= 0 && static_cast<std::size_t>(id) < program.statements.size())
        m.ops += program.stmt(id).meta.executions;
    }
    m.suggestions.push_back("region unanalyzable: " + reason);
    return m;
  };
  if (cancel != nullptr && cancel->cancelled())
    return degraded(std::string("job cancelled (") + cancel->reason_name() +
                    ")");
  try {
    return feedback::analyze_region(program, region, o);
  } catch (const Error& e) {
    return degraded(e.what());
  }
}

double ProfileResult::percent_affine() const {
  return feedback::percent_affine(program);
}

std::string full_report(const ProfileResult& r, double min_fraction) {
  ReportOptions opts;
  opts.min_fraction = min_fraction;
  return full_report(r, opts);
}

std::string full_report(const ProfileResult& r, const ReportOptions& ropts) {
  const double min_fraction = ropts.min_fraction;
  obs::Session* ob = r.obs.get();
  // The feedback stage is the report itself: region analysis, oracle and
  // rendering all happen here. The span must close before the self-profile
  // section renders, so the stage appears in its own table.
  obs::Span feedback_span(ob, "stage:feedback");
  std::ostringstream os;
  os << "==== poly-prof feedback report ====\n";
  if (r.truncated) os << "!! PARTIAL PROFILE (trace truncated) !!\n";
  os << "dynamic ops: " << r.program.total_dynamic_ops
     << "  statements: " << r.program.statements.size()
     << "  dependence edges: " << r.program.deps.size()
     << " (SCEV-pruned: " << r.program.pruned_dep_edges << ")\n";
  os << "stage-2 state: " << r.ddg_dependences << " dynamic deps, "
     << r.shadow_pages << " shadow pages, " << r.coord_pool_words
     << " interned coord words\n";
  os << "fully affine (strict): "
     << static_cast<int>(feedback::percent_affine(r.program, true))
     << "%   (extended): "
     << static_cast<int>(feedback::percent_affine(r.program, false))
     << "%\n\n";

  // The Exp. II contrast: what a purely static (Polly-style) analysis can
  // model of each function, next to what the dynamic profile recovered.
  os << "-- static baseline --\n";
  support::ThreadPool* pool = r.pool != nullptr ? r.pool.get() : nullptr;
  if (r.module == nullptr) {
    os << "unavailable (module not retained)\n";
  } else {
    // Per-function modeling is independent; render each line into its own
    // slot and print in function order — identical for any lane count.
    std::vector<const ir::Function*> baseline_fns;
    for (const auto& f : r.module->functions)
      if (!f.blocks.empty()) baseline_fns.push_back(&f);
    std::vector<std::string> baseline_lines(baseline_fns.size());
    auto render_baseline = [&](std::size_t i) {
      const ir::Function& f = *baseline_fns[i];
      statican::FunctionModel fm = statican::model_function(*r.module, f);
      std::size_t modeled = 0;
      for (const auto& a : fm.accesses)
        if (a.modeled) ++modeled;
      std::ostringstream line;
      line << f.name << ": "
           << (fm.verdict.affine_modeled
                   ? "affine"
                   : statican::reasons_str(fm.verdict.reasons))
           << "  loops " << fm.verdict.num_modeled_loops << "/"
           << fm.verdict.num_loops << "  nest-depth "
           << fm.verdict.max_modeled_nest_depth << "  accesses " << modeled
           << "/" << fm.accesses.size() << "\n";
      baseline_lines[i] = line.str();
    };
    if (pool != nullptr) {
      pool->parallel_for(baseline_fns.size(), render_baseline);
    } else {
      for (std::size_t i = 0; i < baseline_fns.size(); ++i)
        render_baseline(i);
    }
    for (const auto& line : baseline_lines) os << line;
  }
  os << "\n";

  // The precision tier above the baseline: exact (Omega-test) pairwise
  // verdicts, the three-way statement classification, and the selective-
  // instrumentation plan. A pure function of the module — rendered whether
  // or not the run actually skipped anything, so selective and full runs
  // stay byte-identical.
  os << "-- static precision --\n";
  if (r.module == nullptr) {
    os << "unavailable (module not retained)\n";
  } else {
    os << verify::exact::precision_section(*r.module, pool);
  }
  os << "\n";
  os << "-- decorated schedule tree (ops share, source refs) --\n";
  os << feedback::render_decorated_tree(r.schedule_tree, r.program, r.module);
  os << "\n-- regions of interest --\n";
  // Region analyses are independent (each builds its own scheduling
  // problem); fan out into pre-indexed slots, render in region order.
  std::vector<feedback::Region> hot = r.hot_regions(min_fraction);
  std::vector<feedback::RegionMetrics> metrics(hot.size());
  auto analyze_one = [&](std::size_t i) { metrics[i] = r.analyze(hot[i]); };
  if (pool != nullptr) {
    pool->parallel_for(hot.size(), analyze_one);
  } else {
    for (std::size_t i = 0; i < hot.size(); ++i) analyze_one(i);
  }

  // Differential soundness oracle: run BEFORE rendering so a downgraded
  // parallel claim is reflected in the summaries it contradicts. Skipped
  // — with a deterministic verdict line — when disabled (service overload
  // downgrade) or when the job's token has fired (nothing left to spend
  // verification effort on).
  std::string oracle_line = "skipped (module not retained)";
  if (!ropts.run_oracle) {
    oracle_line = "skipped (disabled by service overload downgrade)";
  } else if (r.cancel != nullptr && r.cancel->cancelled()) {
    oracle_line = std::string("skipped (job cancelled: ") +
                  r.cancel->reason_name() + ")";
  } else if (r.module != nullptr) {
    std::vector<feedback::RegionMetrics*> ptrs;
    ptrs.reserve(metrics.size());
    for (auto& m : metrics) ptrs.push_back(&m);
    verify::OracleReport oracle =
        verify::run_oracle(*r.module, r.program, ptrs, /*downgrade=*/true,
                           pool, ob, r.cancel);
    oracle_line = oracle.verdict_line();
  }

  for (auto& mx : metrics) {
    os << "\n" << feedback::summarize(mx);
    os << feedback::render_ast(mx, r.program, r.module);
  }

  os << "\n-- soundness oracle --\n" << oracle_line << "\n";

  // Transformation engine results (PipelineOptions::apply_transforms):
  // predicted vs measured speedups plus the output-identity verdict. Only
  // present when the phase ran, so default profiles stay byte-identical
  // with earlier releases.
  if (r.transform.ran)
    os << "\n-- transformation --\n" << transform::render_section(r.transform);

  // Specialization hints (the paper's Fig. 7 annotation "specialize
  // adjustweight (2nd call)"): a function reached from several distinct
  // call-site regions where one dominates should be transformed in a
  // specialized clone, leaving the cold calls untouched.
  {
    std::map<int, std::vector<u64>> per_func_region_ops;
    for (const auto& region : r.hot_regions(0.0, /*depth=*/2)) {
      std::map<int, u64> funcs;
      for (int id : region.stmts) {
        const auto& s = r.program.stmt(id).meta;
        funcs[s.code.func] += s.executions;
      }
      for (const auto& [f, ops] : funcs)
        per_func_region_ops[f].push_back(ops);
    }
    bool header_printed = false;
    for (const auto& [f, ops_list] : per_func_region_ops) {
      if (ops_list.size() < 2) continue;
      u64 hottest = *std::max_element(ops_list.begin(), ops_list.end());
      u64 rest = 0;
      for (u64 o : ops_list) rest += o;
      rest -= hottest;
      if (hottest < 2 * std::max<u64>(rest, 1)) continue;
      if (static_cast<double>(hottest) <
          min_fraction * static_cast<double>(r.program.total_dynamic_ops))
        continue;
      if (!header_printed) {
        os << "\n-- specialization hints --\n";
        header_printed = true;
      }
      std::string name = r.module
                             ? r.module->functions[static_cast<std::size_t>(f)].name
                             : "f" + std::to_string(f);
      os << "specialize " << name << ": one of its " << ops_list.size()
         << " call-site regions dominates (" << hottest
         << " ops vs " << rest
         << " elsewhere); transform the hot clone only\n";
    }
  }

  // Degradation summary — always present and deterministic, so reports
  // from faulty runs stay golden-testable.
  os << "\n-- degradations --\n";
  if (!r.truncated && r.diagnostics.empty() &&
      r.program.degraded_statements == 0) {
    os << "none\n";
  } else {
    if (r.truncated) os << "trace truncated: results are a partial profile\n";
    if (r.program.degraded_statements > 0)
      os << r.program.degraded_statements
         << " statement(s) degraded to over-approximation\n";
    os << r.diagnostics.render();
  }

  // Self profile — rendered last so every stage (including this one) has
  // closed its span. Timing-dependent values are elided or filtered when
  // stable_self_profile is set, keeping the section byte-identical across
  // thread counts (see DESIGN.md "Observability").
  if (ob != nullptr && ob->enabled()) {
    if (r.pool != nullptr) {
      support::ThreadPool::LaneStats tot = r.pool->total_stats();
      ob->set("pool.tasks", static_cast<i64>(tot.tasks),
              obs::Stability::kTiming);
      ob->set("pool.steals", static_cast<i64>(tot.steals),
              obs::Stability::kTiming);
      ob->set("pool.idle_waits", static_cast<i64>(tot.idle_waits),
              obs::Stability::kTiming);
      for (std::size_t lane = 0; lane < r.pool->workers(); ++lane) {
        support::ThreadPool::LaneStats ls = r.pool->lane_stats(lane);
        std::string prefix = "pool.lane" + std::to_string(lane);
        ob->set((prefix + ".tasks").c_str(), static_cast<i64>(ls.tasks),
                obs::Stability::kTiming);
        ob->set((prefix + ".steals").c_str(), static_cast<i64>(ls.steals),
                obs::Stability::kTiming);
        ob->set((prefix + ".idle_waits").c_str(),
                static_cast<i64>(ls.idle_waits), obs::Stability::kTiming);
      }
    }
    feedback_span.end();
    os << "\n-- self profile --\n"
       << ob->self_profile_section(ropts.stable_self_profile);
  }
  return os.str();
}

}  // namespace pp::core
