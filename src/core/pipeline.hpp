// polyprof public API: the end-to-end POLY-PROF pipeline (paper Fig. 1).
//
//   ir::Module  --stage 1-->  ControlStructure (dynamic CFGs, loop forests,
//                             call graph, recursive-component-set)
//               --stage 2-->  DDG event stream (dynamic IIVs, shadow memory)
//               --stage 3-->  FoldedProgram (compact polyhedral DDG)
//               --stage 4-->  feedback (scheduling, metrics, flame graphs)
//
// Typical use:
//   pp::core::Pipeline pipe(module);
//   pp::core::ProfileResult r = pipe.run();
//   for (auto& region : r.hot_regions())
//     std::cout << pp::feedback::summarize(r.analyze(region));
#pragma once

#include <memory>

#include "feedback/metrics.hpp"
#include "feedback/report.hpp"
#include "iiv/cct.hpp"
#include "iiv/schedule_tree.hpp"
#include "obs/obs.hpp"
#include "support/budget.hpp"
#include "support/cancel.hpp"
#include "support/thread_pool.hpp"
#include "transform/engine.hpp"
#include "vm/chaos.hpp"

namespace pp::core {

struct PipelineOptions {
  std::string entry = "main";
  std::vector<i64> args;
  u64 max_steps = 500'000'000;
  ddg::DdgOptions ddg;
  fold::FolderOptions fold;
  /// Resource caps for the whole run (0 = unlimited). `vm_steps` tightens
  /// `max_steps`; the shadow/pool/wall caps degrade stage 2 mid-replay.
  /// Exhaustion never aborts: the result is flagged `truncated` and the
  /// affected statements fold as over-approximations.
  support::RunBudget budget;
  /// Fault injection into the stage-2 instrumentation stream (testing the
  /// degrade paths; kNone in production). Stage 1 is never chaos-wrapped,
  /// so the control structure stays intact under injected faults.
  vm::ChaosOptions chaos;
  /// Selective instrumentation: before stage 2, run the exact static
  /// dependence analysis (verify::exact) and skip shadow-memory tracking
  /// for access sites proven dependence-free. Pure optimization — the
  /// full_report is byte-identical to a full run by construction (the
  /// skipped sites could never have produced a dependence edge, and the
  /// shadow page count is reconstructed from recorded store addresses).
  /// Silently ignored when it could be observable: anti/output tracking
  /// on, or a shadow-page budget set (skips would move its trip point).
  bool selective_instrumentation = false;
  /// Hot-path trace compaction (vm::PathCache + bulk DDG replay): loop
  /// iterations re-executing an already-recorded Ball-Larus path with
  /// affine value/address recurrences are swallowed into compressed runs
  /// and replayed in bulk. Pure optimization — full_report is
  /// byte-identical either way; set false for the reference
  /// interpretation. Silently ignored when the configuration makes bulk
  /// replay observable (anti/output tracking, shadow/pool/wall budget
  /// caps).
  bool path_compaction = true;
  /// Run the pp::verify module verifier before any replay (the default).
  /// An ill-formed module is rejected with structured diagnostics instead
  /// of trapping mid-execution. Opt out for deliberately malformed inputs
  /// (e.g. profiling how far a broken module gets).
  bool verify_module = true;
  /// Worker lanes for the parallel pipeline: VM/instrumentation overlap
  /// through the bounded event ring, per-statement/per-edge fold fan-out,
  /// per-SCC-group scheduling and oracle re-validation. 0 resolves to
  /// hardware_concurrency; 1 runs every stage inline (the reference
  /// serial behavior). Output is byte-identical for every value — see
  /// DESIGN.md "Concurrency architecture".
  unsigned threads = 0;
  /// Self-observability (pp::obs): stage spans, pipeline counters and the
  /// Chrome-trace / run-manifest exporters. Off by default — when off,
  /// every instrumentation point is a branch on a constant bool (the
  /// overhead is bounded by bench/obs_overhead). The session lives in
  /// ProfileResult::obs.
  bool observe = false;
  /// Cooperative cancellation (may be null; must outlive the run AND the
  /// ProfileResult — full_report consults it too). A fired token stops
  /// the run at the next checkpoint — stage boundary, VM step cadence,
  /// fold merge position — and yields a diagnosed partial ProfileResult
  /// with `truncated` and `cancelled` set, exactly like budget
  /// exhaustion. pp::service plumbs one per job; library callers can pass
  /// their own for ad-hoc timeouts (CancelToken::set_deadline_in_ms).
  support::CancelToken* cancel = nullptr;
  /// Close the loop: after folding, run the transformation engine
  /// (pp::transform) — apply every schedule the profile justifies to a
  /// copy of the module, A/B-measure under the engine's cost model, and
  /// enforce the output-identity contract. Forces
  /// DdgOptions::track_anti_output (the legality checks need WAR/WAW
  /// edges), which in turn disables selective instrumentation and path
  /// compaction for the run. full_report gains a `-- transformation --`
  /// section.
  bool apply_transforms = false;
  /// Engine knobs (tile size, measurement cost model, oracle gate) used
  /// when `apply_transforms` is set; cancel/pool are plumbed from the run.
  transform::Options transform;
  /// Share an existing worker pool instead of creating one per run (then
  /// `threads` is ignored). pp::service points every job at one server
  /// pool: concurrent runs inter-schedule their fan-outs on the same
  /// work-stealing lanes (external callers are safe — they submit and
  /// help from lane 0). Null: run() creates a pool from `threads`.
  std::shared_ptr<support::ThreadPool> pool;
};

/// Everything the profiler learned about one execution.
///
/// Holds a non-owning pointer to the profiled module (for function/source
/// name lookups): the ir::Module must outlive the ProfileResult.
struct ProfileResult {
  const ir::Module* module = nullptr;
  cfg::ControlStructure control;
  ddg::StatementTable statements;
  fold::FoldedProgram program;
  iiv::DynScheduleTree schedule_tree;  ///< weights = dynamic ops
  iiv::CallingContextTree cct;
  vm::RunStats stats;
  i64 exit_value = 0;

  /// The profile is partial: a replay trapped, the event stream was
  /// rejected/truncated, a budget cap tripped, or the job was cancelled.
  /// Everything present is still well-formed — stage-1 results survive
  /// stage-2 faults, and degraded statements are certified
  /// over-approximations, never silently wrong.
  bool truncated = false;
  /// The run was stopped by its CancelToken (client cancel or expired
  /// deadline — `cancel->reason()` distinguishes). Always implies
  /// `truncated`.
  bool cancelled = false;
  /// The token the run was handed (null when none). Non-owning;
  /// full_report checks it to skip the oracle and report cancelled
  /// regions deterministically.
  support::CancelToken* cancel = nullptr;
  /// Structured record of every degradation, in pipeline order.
  support::DiagnosticLog diagnostics;

  /// The worker pool run() used, shared so the feedback stage (analyze /
  /// full_report) fans out on the same lanes. Null on default-constructed
  /// results — every consumer falls back to serial.
  std::shared_ptr<support::ThreadPool> pool;

  /// Self-observability session (PipelineOptions::observe). Null when
  /// observation is off. full_report appends a "-- self profile --"
  /// section from it; chrome_trace_json / manifest_json export the run.
  std::shared_ptr<obs::Session> obs;

  /// Transformation-engine results (PipelineOptions::apply_transforms).
  /// `transform.ran` is false when the phase was off or skipped;
  /// full_report renders it as the `-- transformation --` section.
  transform::EngineReport transform;

  /// Stage-2 instrumentation accounting (drives the overhead report):
  /// dynamic dependences streamed, shadow pages materialized, and words
  /// of interned iteration-vector storage.
  u64 ddg_dependences = 0;
  std::size_t shadow_pages = 0;
  std::size_t coord_pool_words = 0;

  /// Mine regions of interest, heaviest first, keeping those above
  /// `min_fraction` of all dynamic ops. A region boundary is a loop /
  /// recursive component or a call site; `depth` controls how many
  /// boundaries to descend before cutting (1 = top-level regions like the
  /// paper's "facetrain.c:25" whole-call region; 2 = one level deeper,
  /// e.g. the individual layerforward/adjust_weights calls inside it).
  std::vector<feedback::Region> hot_regions(double min_fraction = 0.05,
                                            int depth = 1) const;

  /// The whole program as a single region.
  feedback::Region whole_program() const;

  /// Run the polyhedral feedback stage on one region. A fault inside the
  /// feedback stage degrades the region to "unanalyzable" (metrics with
  /// analyzable=false and the fault reason) instead of throwing.
  feedback::RegionMetrics analyze(
      const feedback::Region& region,
      const feedback::AnalyzeOptions& opts = {}) const;

  /// Table 5 %Aff for this execution.
  double percent_affine() const;
};

/// Rendering knobs for full_report.
struct ReportOptions {
  double min_fraction = 0.05;
  /// With the profile observed (r.obs != null), elide wall/CPU times and
  /// timing-dependent counters from the self-profile section so the report
  /// stays byte-identical across thread counts and runs (the --stable
  /// golden contract). Set false for human consumption of real times.
  bool stable_self_profile = true;
  /// Run the differential soundness oracle (the default). pp::service
  /// disables it for jobs downgraded under overload — the report then
  /// carries a deterministic "skipped" verdict line.
  bool run_oracle = true;
};

/// The full textual feedback bundle the paper ships as its supplementary
/// document: program-level statistics, the decorated schedule tree, and
/// per-region metrics + post-transformation ASTs for every hot region.
/// With r.obs set, ends with a "-- self profile --" section.
std::string full_report(const ProfileResult& r, double min_fraction = 0.05);
std::string full_report(const ProfileResult& r, const ReportOptions& opts);

/// Two-pass profiling driver. The module must outlive the pipeline.
class Pipeline {
 public:
  explicit Pipeline(const ir::Module& m) : module_(m) {}

  /// Runs the program twice (Instrumentation I then II) and folds.
  ///
  /// Degrade-don't-die: run() never lets a pp::Error escape. A VM trap, a
  /// malformed event stream or an exhausted budget truncates the trace at
  /// the last well-formed event and yields a ProfileResult with the
  /// stages completed so far, `truncated` set, and the reasons in
  /// `diagnostics`.
  ProfileResult run(const PipelineOptions& opts = {});

 private:
  const ir::Module& module_;
};

}  // namespace pp::core
