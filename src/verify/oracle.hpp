// Layer 3 of pp::verify: the differential soundness oracle (DESIGN.md,
// "Exp. II contrast"). Two independent dependence analyses look at the same
// program — the dynamic DDG (ground truth for ONE execution) and the static
// may-dependence tester (sound for ALL executions). Their results must
// nest:
//
//   (a) dynamic ⊆ static: every folded DDG edge whose endpoints statican
//       models must be covered by the static may-dependence set. A dynamic
//       dependence the static tester proved impossible means one of the two
//       analyses is wrong — the profiler's strongest self-check.
//   (b) claims vs. evidence: every parallel / permutable level the
//       scheduler announced is re-validated instance-by-instance against
//       the folded dependences (the must-pieces — provably-occurred
//       instances). A dependence carried by a level claimed parallel
//       contradicts the claim; contradicted levels are downgraded and the
//       region metrics refreshed.
//   (c) precision tier: the two static analyses must nest too —
//       dynamic ⊆ exact ⊆ may-dep. Over every modeled store-involved site
//       pair, a pair the may-tester proves address-disjoint can never be
//       found dependent by the exact Omega test (and a dynamic edge on a
//       pair the exact test proves independent is a coverage violation).
//       Pairs where exact strictly improves on may are counted as refined.
#pragma once

#include <string>
#include <vector>

#include "feedback/metrics.hpp"
#include "fold/folded_ddg.hpp"
#include "obs/obs.hpp"
#include "support/cancel.hpp"
#include "support/thread_pool.hpp"
#include "verify/static_deps.hpp"

namespace pp::verify {

/// One dynamic dependence edge the static tester claims cannot exist.
struct CoverageViolation {
  int dep_index = -1;  ///< index into FoldedProgram::deps
  int src_stmt = -1;
  int dst_stmt = -1;
  ddg::DepKind kind{};
  std::string message;
};

/// Part (a): dynamic-⊆-static containment over the folded DDG.
struct CoverageReport {
  u64 checked = 0;   ///< edges with both endpoints statically modeled
  u64 skipped = 0;   ///< cross-function or unmodeled edges (no verdict)
  /// Memory edges the may-tester covered that were re-checked against the
  /// exact Omega verdict (dynamic ⊆ exact, the stricter containment).
  u64 exact_checked = 0;
  std::vector<CoverageViolation> violations;

  bool ok() const { return violations.empty(); }
  std::string str() const;
};

/// `pool` (optional) parallelizes the per-function dataflow construction
/// (the dominant cost); the edge sweep itself is serial, so the report —
/// including violation order — is identical for any lane count.
CoverageReport check_dynamic_coverage(const ir::Module& m,
                                      const fold::FoldedProgram& prog,
                                      support::ThreadPool* pool = nullptr);

/// One exact-⊆-may nesting failure: the may-tester proved a site pair
/// address-disjoint, yet the exact Omega test found an integer instance
/// pair touching the same word. One of the two analyses is wrong.
struct PrecisionViolation {
  int func = -1;
  int src_block = -1, src_instr = -1;
  int dst_block = -1, dst_instr = -1;
  std::string message;
};

/// Part (c): the static precision tier. Purely static — a function of the
/// module alone, independent of the execution being profiled.
struct PrecisionReport {
  u64 pairs_checked = 0;  ///< modeled store-involved pairs compared
  u64 refined = 0;  ///< may says may-alias, exact proves independent
  std::vector<PrecisionViolation> violations;

  bool ok() const { return violations.empty(); }
  std::string str() const;
};

/// Compare the may-dep tester and the exact tier over every modeled
/// store-involved site pair of every function. `pool` (optional) fans the
/// per-function analyses out; the comparison sweep is serial in program
/// order, so violation order is identical for any lane count.
PrecisionReport check_precision_tier(const ir::Module& m,
                                     support::ThreadPool* pool = nullptr);

/// One contradicted scheduler claim, with the offending dependence.
struct ClaimWitness {
  enum class Kind {
    kParallelContradicted,  ///< nonzero distance at a parallel level
    kIllegalLevel,          ///< negative distance before satisfaction
    kBandViolation,         ///< negative in-band distance (not permutable)
  };
  Kind kind{};
  int group = -1;
  int level = -1;
  int src_stmt = -1;
  int dst_stmt = -1;
  std::string message;
};

/// Part (b): parallel/permutable claims re-validated against the DDG.
struct ClaimReport {
  u64 parallel_levels = 0;    ///< parallel claims examined
  u64 instances_checked = 0;  ///< enumerated dependence instances walked
  /// Pieces over the enumeration cap: decided by the exact integer test
  /// (Omega) per level, with the rational LP bounds as the fallback when a
  /// query hits the effort cap.
  u64 capped_pieces = 0;
  int downgraded_levels = 0;  ///< parallel flags cleared by the oracle
  std::vector<ClaimWitness> witnesses;

  bool ok() const { return witnesses.empty(); }
  std::string str() const;
};

/// Re-validate every schedule level of `m.sched` against the must-pieces
/// of the folded dependences. With `downgrade` set (the default),
/// contradicted parallel levels lose their flag and the schedule-derived
/// metrics of `m` are recomputed via feedback::refresh_schedule_metrics.
/// `pool` (optional) re-validates the fused groups in parallel — groups
/// are independent (disjoint statement sets, group-local dedup), and the
/// per-group reports merge in group order, so witnesses and counters are
/// identical for any lane count.
ClaimReport check_parallel_claims(const fold::FoldedProgram& prog,
                                  feedback::RegionMetrics& m,
                                  bool downgrade = true,
                                  support::ThreadPool* pool = nullptr);

/// All three parts bundled, plus the one-line verdict full_report prints.
struct OracleReport {
  CoverageReport coverage;
  PrecisionReport precision;
  std::vector<ClaimReport> claims;  ///< one per region checked

  bool ok() const;
  std::string verdict_line() const;
};

/// `pool` (optional) fans out the coverage prefetch, the per-region claim
/// checks (each region's metrics are touched by exactly one task) and the
/// per-group sweeps within each region. Reports collect into pre-indexed
/// slots and merge in region order — byte-identical at any lane count.
/// `obs` (optional) wraps the run in a span and counts regions/claims and
/// enumeration-cap hits (`verify.cap_hits`).
/// `cancel` (optional): a token fired before the run skips the coverage
/// sweep entirely; one fired mid-run leaves the remaining regions'
/// ClaimReports empty (zero claims, no witnesses) — an un-examined claim
/// is never downgraded, so a cancelled oracle can't corrupt metrics.
OracleReport run_oracle(const ir::Module& m, const fold::FoldedProgram& prog,
                        const std::vector<feedback::RegionMetrics*>& regions,
                        bool downgrade = true,
                        support::ThreadPool* pool = nullptr,
                        obs::Session* obs = nullptr,
                        support::CancelToken* cancel = nullptr);

}  // namespace pp::verify
