// Layer 3 of pp::verify: the differential soundness oracle (DESIGN.md,
// "Exp. II contrast"). Two independent dependence analyses look at the same
// program — the dynamic DDG (ground truth for ONE execution) and the static
// may-dependence tester (sound for ALL executions). Their results must
// nest:
//
//   (a) dynamic ⊆ static: every folded DDG edge whose endpoints statican
//       models must be covered by the static may-dependence set. A dynamic
//       dependence the static tester proved impossible means one of the two
//       analyses is wrong — the profiler's strongest self-check.
//   (b) claims vs. evidence: every parallel / permutable level the
//       scheduler announced is re-validated instance-by-instance against
//       the folded dependences (the must-pieces — provably-occurred
//       instances). A dependence carried by a level claimed parallel
//       contradicts the claim; contradicted levels are downgraded and the
//       region metrics refreshed.
#pragma once

#include <string>
#include <vector>

#include "feedback/metrics.hpp"
#include "fold/folded_ddg.hpp"
#include "obs/obs.hpp"
#include "support/cancel.hpp"
#include "support/thread_pool.hpp"
#include "verify/static_deps.hpp"

namespace pp::verify {

/// One dynamic dependence edge the static tester claims cannot exist.
struct CoverageViolation {
  int dep_index = -1;  ///< index into FoldedProgram::deps
  int src_stmt = -1;
  int dst_stmt = -1;
  ddg::DepKind kind{};
  std::string message;
};

/// Part (a): dynamic-⊆-static containment over the folded DDG.
struct CoverageReport {
  u64 checked = 0;   ///< edges with both endpoints statically modeled
  u64 skipped = 0;   ///< cross-function or unmodeled edges (no verdict)
  std::vector<CoverageViolation> violations;

  bool ok() const { return violations.empty(); }
  std::string str() const;
};

/// `pool` (optional) parallelizes the per-function dataflow construction
/// (the dominant cost); the edge sweep itself is serial, so the report —
/// including violation order — is identical for any lane count.
CoverageReport check_dynamic_coverage(const ir::Module& m,
                                      const fold::FoldedProgram& prog,
                                      support::ThreadPool* pool = nullptr);

/// One contradicted scheduler claim, with the offending dependence.
struct ClaimWitness {
  enum class Kind {
    kParallelContradicted,  ///< nonzero distance at a parallel level
    kIllegalLevel,          ///< negative distance before satisfaction
    kBandViolation,         ///< negative in-band distance (not permutable)
  };
  Kind kind{};
  int group = -1;
  int level = -1;
  int src_stmt = -1;
  int dst_stmt = -1;
  std::string message;
};

/// Part (b): parallel/permutable claims re-validated against the DDG.
struct ClaimReport {
  u64 parallel_levels = 0;    ///< parallel claims examined
  u64 instances_checked = 0;  ///< enumerated dependence instances walked
  u64 lp_checked_pieces = 0;  ///< pieces too large to enumerate (LP bounds)
  int downgraded_levels = 0;  ///< parallel flags cleared by the oracle
  std::vector<ClaimWitness> witnesses;

  bool ok() const { return witnesses.empty(); }
  std::string str() const;
};

/// Re-validate every schedule level of `m.sched` against the must-pieces
/// of the folded dependences. With `downgrade` set (the default),
/// contradicted parallel levels lose their flag and the schedule-derived
/// metrics of `m` are recomputed via feedback::refresh_schedule_metrics.
/// `pool` (optional) re-validates the fused groups in parallel — groups
/// are independent (disjoint statement sets, group-local dedup), and the
/// per-group reports merge in group order, so witnesses and counters are
/// identical for any lane count.
ClaimReport check_parallel_claims(const fold::FoldedProgram& prog,
                                  feedback::RegionMetrics& m,
                                  bool downgrade = true,
                                  support::ThreadPool* pool = nullptr);

/// Both halves bundled, plus the one-line verdict full_report prints.
struct OracleReport {
  CoverageReport coverage;
  std::vector<ClaimReport> claims;  ///< one per region checked

  bool ok() const;
  std::string verdict_line() const;
};

/// `pool` (optional) fans out the coverage prefetch, the per-region claim
/// checks (each region's metrics are touched by exactly one task) and the
/// per-group sweeps within each region. Reports collect into pre-indexed
/// slots and merge in region order — byte-identical at any lane count.
/// `obs` (optional) wraps the run in a span and counts regions/claims.
/// `cancel` (optional): a token fired before the run skips the coverage
/// sweep entirely; one fired mid-run leaves the remaining regions'
/// ClaimReports empty (zero claims, no witnesses) — an un-examined claim
/// is never downgraded, so a cancelled oracle can't corrupt metrics.
OracleReport run_oracle(const ir::Module& m, const fold::FoldedProgram& prog,
                        const std::vector<feedback::RegionMetrics*>& regions,
                        bool downgrade = true,
                        support::ThreadPool* pool = nullptr,
                        obs::Session* obs = nullptr,
                        support::CancelToken* cancel = nullptr);

}  // namespace pp::verify
