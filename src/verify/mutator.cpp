#include "verify/mutator.hpp"

#include "verify/dataflow.hpp"

namespace pp::verify {

using ir::Function;
using ir::Instr;
using ir::Module;
using ir::Op;
using ir::Reg;

const char* defect_class_name(DefectClass c) {
  switch (c) {
    case DefectClass::kDanglingBranch: return "dangling-branch";
    case DefectClass::kMissingTerminator: return "missing-terminator";
    case DefectClass::kUseBeforeDef: return "use-before-def";
    case DefectClass::kBadCallArity: return "bad-call-arity";
    case DefectClass::kOutOfRangeRegister: return "out-of-range-register";
  }
  return "?";
}

IssueCode expected_issue(DefectClass c) {
  switch (c) {
    case DefectClass::kDanglingBranch: return IssueCode::kBadBranchTarget;
    case DefectClass::kMissingTerminator: return IssueCode::kMissingTerminator;
    case DefectClass::kUseBeforeDef: return IssueCode::kUseBeforeDef;
    case DefectClass::kBadCallArity: return IssueCode::kBadCallArity;
    case DefectClass::kOutOfRangeRegister: return IssueCode::kBadRegister;
  }
  return IssueCode::kNoBlocks;
}

namespace {

// splitmix64: tiny, seedable, no global state.
struct Rng {
  u64 s;
  u64 next() {
    s += 0x9e3779b97f4a7c15ull;
    u64 z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }
};

Function& pick_function(Module& m, Rng& rng) {
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < m.functions.size(); ++i)
    if (!m.functions[i].blocks.empty()) eligible.push_back(i);
  PP_CHECK(!eligible.empty(), "mutate: module has no function with blocks");
  return m.functions[eligible[rng.below(eligible.size())]];
}

Mutation dangling_branch(Module& m, Rng& rng) {
  // Corrupt an existing branch when one exists, else replace a terminator
  // with an out-of-range kBr.
  struct Site { Function* f; int b; int i; };
  std::vector<Site> branches;
  for (auto& f : m.functions)
    for (auto& bb : f.blocks)
      for (std::size_t i = 0; i < bb.instrs.size(); ++i)
        if (bb.instrs[i].op == Op::kBr || bb.instrs[i].op == Op::kBrCond)
          branches.push_back({&f, bb.id, static_cast<int>(i)});
  Mutation mu;
  mu.cls = DefectClass::kDanglingBranch;
  if (!branches.empty()) {
    Site s = branches[rng.below(branches.size())];
    Instr& in = s.f->blocks[static_cast<std::size_t>(s.b)]
                    .instrs[static_cast<std::size_t>(s.i)];
    i64 bogus = static_cast<i64>(s.f->blocks.size()) +
                static_cast<i64>(rng.below(7));
    in.imm = bogus;
    mu.func = s.f->id;
    mu.block = s.b;
    mu.instr = s.i;
    mu.description = "branch target set to bb" + std::to_string(bogus);
    return mu;
  }
  Function& f = pick_function(m, rng);
  auto& bb = f.blocks[rng.below(f.blocks.size())];
  Instr br;
  br.op = Op::kBr;
  br.imm = static_cast<i64>(f.blocks.size()) + 3;
  bb.instrs.back() = br;
  mu.func = f.id;
  mu.block = bb.id;
  mu.instr = static_cast<int>(bb.instrs.size()) - 1;
  mu.description = "terminator replaced by br to bb" + std::to_string(br.imm);
  return mu;
}

Mutation missing_terminator(Module& m, Rng& rng) {
  Function& f = pick_function(m, rng);
  auto& bb = f.blocks[rng.below(f.blocks.size())];
  if (f.num_regs == 0) f.num_regs = 1;
  Instr filler;
  filler.op = Op::kConst;
  filler.dst = 0;
  filler.imm = 0;
  bb.instrs.back() = filler;  // block now ends in a plain kConst
  Mutation mu;
  mu.cls = DefectClass::kMissingTerminator;
  mu.func = f.id;
  mu.block = bb.id;
  mu.instr = static_cast<int>(bb.instrs.size()) - 1;
  mu.description = "terminator replaced by const";
  return mu;
}

Mutation use_before_def(Module& m, Rng& rng) {
  Function& f = pick_function(m, rng);
  // A fresh register read at the very top of the entry block: no path can
  // define it first.
  Reg fresh = f.num_regs;
  f.num_regs += 1;
  Instr use;
  use.op = Op::kMov;
  use.dst = fresh;
  use.a = fresh;
  auto& entry = f.blocks.front();
  entry.instrs.insert(entry.instrs.begin(), use);
  Mutation mu;
  mu.cls = DefectClass::kUseBeforeDef;
  mu.func = f.id;
  mu.block = entry.id;
  mu.instr = 0;
  mu.description = "mov r" + std::to_string(fresh) + ", r" +
                   std::to_string(fresh) + " inserted at entry";
  return mu;
}

Mutation bad_call_arity(Module& m, Rng& rng) {
  struct Site { Function* f; int b; int i; };
  std::vector<Site> calls;
  for (auto& f : m.functions)
    for (auto& bb : f.blocks)
      for (std::size_t i = 0; i < bb.instrs.size(); ++i)
        if (bb.instrs[i].op == Op::kCall)
          calls.push_back({&f, bb.id, static_cast<int>(i)});
  Mutation mu;
  mu.cls = DefectClass::kBadCallArity;
  if (!calls.empty()) {
    Site s = calls[rng.below(calls.size())];
    Function& f = *s.f;
    if (f.num_regs == 0) f.num_regs = 1;
    Instr& in = f.blocks[static_cast<std::size_t>(s.b)]
                    .instrs[static_cast<std::size_t>(s.i)];
    in.args.push_back(0);  // one extra (in-range) argument
    mu.func = f.id;
    mu.block = s.b;
    mu.instr = s.i;
    mu.description = "extra call argument appended";
    return mu;
  }
  // No call anywhere: inject one with the wrong arity before a terminator.
  Function& f = pick_function(m, rng);
  Function& callee = m.functions[rng.below(m.functions.size())];
  if (f.num_regs == 0) f.num_regs = 1;
  Instr call;
  call.op = Op::kCall;
  call.imm = callee.id;
  call.args.assign(static_cast<std::size_t>(callee.num_args) + 1, 0);
  auto& bb = f.blocks[rng.below(f.blocks.size())];
  bb.instrs.insert(bb.instrs.end() - 1, call);
  Mutation mu2;
  mu2.cls = DefectClass::kBadCallArity;
  mu2.func = f.id;
  mu2.block = bb.id;
  mu2.instr = static_cast<int>(bb.instrs.size()) - 2;
  mu2.description = "call to " + callee.name + " injected with arity+1";
  return mu2;
}

Mutation out_of_range_register(Module& m, Rng& rng) {
  // Corrupt a random register slot (destination or used operand).
  struct Site { Function* f; int b; int i; int slot; };  // slot: -1 dst, 0 a, 1 b
  std::vector<Site> sites;
  for (auto& f : m.functions) {
    for (auto& bb : f.blocks) {
      for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
        const Instr& in = bb.instrs[i];
        if (instr_writes(in))
          sites.push_back({&f, bb.id, static_cast<int>(i), -1});
        std::vector<Reg> uses = instr_uses(in);
        // Only direct a/b slots are corrupted (call args are handled by the
        // arity class).
        if (in.op != Op::kCall) {
          if (!uses.empty()) sites.push_back({&f, bb.id, static_cast<int>(i), 0});
          if (uses.size() > 1) sites.push_back({&f, bb.id, static_cast<int>(i), 1});
        }
      }
    }
  }
  Mutation mu;
  mu.cls = DefectClass::kOutOfRangeRegister;
  if (!sites.empty()) {
    Site s = sites[rng.below(sites.size())];
    Instr& in = s.f->blocks[static_cast<std::size_t>(s.b)]
                    .instrs[static_cast<std::size_t>(s.i)];
    Reg bogus = s.f->num_regs + static_cast<Reg>(rng.below(5));
    if (s.slot == -1)
      in.dst = bogus;
    else if (s.slot == 0)
      in.a = bogus;
    else
      in.b = bogus;
    mu.func = s.f->id;
    mu.block = s.b;
    mu.instr = s.i;
    mu.description = "register slot set to r" + std::to_string(bogus);
    return mu;
  }
  // Degenerate module (only br/ret with no value): inject a const to an
  // out-of-range destination.
  Function& f = pick_function(m, rng);
  Instr k;
  k.op = Op::kConst;
  k.dst = f.num_regs + 2;
  auto& bb = f.blocks.front();
  bb.instrs.insert(bb.instrs.end() - 1, k);
  mu.func = f.id;
  mu.block = bb.id;
  mu.instr = static_cast<int>(bb.instrs.size()) - 2;
  mu.description = "const to out-of-range register injected";
  return mu;
}

}  // namespace

Mutation mutate(Module& m, DefectClass cls, u64 seed) {
  Rng rng{seed * 0x9e3779b97f4a7c15ull + static_cast<u64>(cls) + 1};
  switch (cls) {
    case DefectClass::kDanglingBranch: return dangling_branch(m, rng);
    case DefectClass::kMissingTerminator: return missing_terminator(m, rng);
    case DefectClass::kUseBeforeDef: return use_before_def(m, rng);
    case DefectClass::kBadCallArity: return bad_call_arity(m, rng);
    case DefectClass::kOutOfRangeRegister: return out_of_range_register(m, rng);
  }
  fatal("mutate: unknown defect class");
}

const char* access_mutation_name(AccessMutation c) {
  switch (c) {
    case AccessMutation::kWeaklyDynamic: return "weakly-dynamic-flip";
    case AccessMutation::kDynamicRequired: return "dynamic-required-flip";
  }
  return "?";
}

statican::AccessClass expected_access_class(AccessMutation c) {
  return c == AccessMutation::kWeaklyDynamic
             ? statican::AccessClass::kWeaklyDynamic
             : statican::AccessClass::kDynamicRequired;
}

AccessMutationResult mutate_access(Module& m, AccessMutation cls, u64 seed) {
  Rng rng{seed * 0x9e3779b97f4a7c15ull + 0xa5ull + static_cast<u64>(cls)};
  struct Site { Function* f; int b; int i; };
  std::vector<Site> sites;
  for (auto& f : m.functions) {
    if (f.blocks.empty()) continue;
    const statican::FunctionModel fm = statican::model_function(m, f);
    for (const auto& acc : fm.accesses) {
      if (acc.cls != statican::AccessClass::kStaticExact) continue;
      if (cls == AccessMutation::kWeaklyDynamic) {
        // The condition laundering needs a branch to corrupt.
        const Op term = f.block(acc.block).instrs.back().op;
        if (term != Op::kBr && term != Op::kBrCond) continue;
      }
      sites.push_back({&f, acc.block, acc.instr});
    }
  }
  AccessMutationResult mu;
  mu.cls = cls;
  if (sites.empty()) return mu;
  const Site s = sites[rng.below(sites.size())];
  Function& f = *s.f;
  auto& bb = f.block(s.b);
  const std::size_t ai = static_cast<std::size_t>(s.i);
  const Reg addr = bb.instrs[ai].a;
  const i64 imm = bb.instrs[ai].imm;
  const Reg r0 = f.num_regs, r1 = f.num_regs + 1, r2 = f.num_regs + 2;
  f.num_regs += 3;
  Instr ld;
  ld.op = Op::kLoad;
  ld.dst = r0;
  ld.a = addr;
  ld.imm = imm;  // re-reads the access's own word: always a valid address
  mu.func = f.id;
  mu.block = s.b;

  if (cls == AccessMutation::kDynamicRequired) {
    // addr' = addr + (x - x): the same address at runtime, statically
    // opaque (the loaded value has no affine structure).
    Instr sub;
    sub.op = Op::kSub;
    sub.dst = r1;
    sub.a = r0;
    sub.b = r0;
    Instr add;
    add.op = Op::kAdd;
    add.dst = r2;
    add.a = addr;
    add.b = r1;
    bb.instrs.insert(bb.instrs.begin() + static_cast<std::ptrdiff_t>(ai),
                     {ld, sub, add});
    bb.instrs[ai + 3].a = r2;
    mu.instr = s.i + 3;
    mu.description = "access address laundered through loaded data";
    return mu;
  }

  // kWeaklyDynamic: make the block's branch condition data-dependent while
  // leaving the taken edge unchanged. Insertions land before the
  // terminator, so the access keeps its index.
  mu.instr = s.i;
  if (bb.instrs.back().op == Op::kBr) {
    // br T  ->  brcond (x == x), T, T
    Instr cmp;
    cmp.op = Op::kCmpEq;
    cmp.dst = r1;
    cmp.a = r0;
    cmp.b = r0;
    bb.instrs.insert(bb.instrs.end() - 1, {ld, cmp});
    Instr& term = bb.instrs.back();
    term.op = Op::kBrCond;
    term.a = r1;
    term.imm2 = term.imm;
    mu.description = "br laundered into data-dependent brcond (same target)";
  } else {
    // brcond c, T, E  ->  brcond c + (x - x), T, E
    Instr sub;
    sub.op = Op::kSub;
    sub.dst = r1;
    sub.a = r0;
    sub.b = r0;
    Instr add;
    add.op = Op::kAdd;
    add.dst = r2;
    add.a = bb.instrs.back().a;
    add.b = r1;
    bb.instrs.insert(bb.instrs.end() - 1, {ld, sub, add});
    bb.instrs.back().a = r2;
    mu.description = "brcond condition laundered through loaded data";
  }
  return mu;
}

}  // namespace pp::verify
