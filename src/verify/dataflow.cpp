#include "verify/dataflow.hpp"

#include <algorithm>

namespace pp::verify {

using ir::Instr;
using ir::Op;
using ir::Reg;

bool BitVec::union_with(const BitVec& o) {
  bool changed = false;
  for (std::size_t i = 0; i < w_.size(); ++i) {
    u64 nv = w_[i] | o.w_[i];
    changed |= nv != w_[i];
    w_[i] = nv;
  }
  return changed;
}

bool BitVec::intersect_with(const BitVec& o) {
  bool changed = false;
  for (std::size_t i = 0; i < w_.size(); ++i) {
    u64 nv = w_[i] & o.w_[i];
    changed |= nv != w_[i];
    w_[i] = nv;
  }
  return changed;
}

void BitVec::transfer(const BitVec& gen, const BitVec& kill) {
  for (std::size_t i = 0; i < w_.size(); ++i)
    w_[i] = (w_[i] & ~kill.w_[i]) | gen.w_[i];
}

BlockGraph::BlockGraph(const ir::Function& f) {
  std::size_t n = f.blocks.size();
  succs.resize(n);
  preds.resize(n);
  rpo_index.assign(n, -1);
  auto in_range = [n](i64 t) {
    return t >= 0 && static_cast<std::size_t>(t) < n;
  };
  for (std::size_t b = 0; b < n; ++b) {
    const auto& instrs = f.blocks[b].instrs;
    if (instrs.empty()) continue;
    const Instr& t = instrs.back();
    if (t.op == Op::kBr) {
      if (in_range(t.imm)) succs[b].push_back(static_cast<int>(t.imm));
    } else if (t.op == Op::kBrCond) {
      if (in_range(t.imm)) succs[b].push_back(static_cast<int>(t.imm));
      if (in_range(t.imm2) && t.imm2 != t.imm)
        succs[b].push_back(static_cast<int>(t.imm2));
    }
  }
  for (std::size_t b = 0; b < n; ++b)
    for (int s : succs[b]) preds[static_cast<std::size_t>(s)].push_back(static_cast<int>(b));

  // Iterative postorder DFS from the entry, then reverse.
  if (n == 0) return;
  std::vector<int> post;
  std::vector<char> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<int, std::size_t>> stack;
  stack.emplace_back(0, 0);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const auto& ss = succs[static_cast<std::size_t>(b)];
    if (next < ss.size()) {
      int s = ss[next++];
      if (state[static_cast<std::size_t>(s)] == 0) {
        state[static_cast<std::size_t>(s)] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[static_cast<std::size_t>(b)] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  rpo.assign(post.rbegin(), post.rend());
  for (std::size_t i = 0; i < rpo.size(); ++i)
    rpo_index[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);
}

DomTree::DomTree(const BlockGraph& g) : rpo_index_(g.rpo_index) {
  // Cooper-Harvey-Kennedy: iterate idom over RPO until fixpoint.
  std::size_t n = g.num_blocks();
  idom_.assign(n, -1);
  if (g.rpo.empty()) return;
  int entry = g.rpo[0];
  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpo_index_[static_cast<std::size_t>(a)] >
             rpo_index_[static_cast<std::size_t>(b)])
        a = idom_[static_cast<std::size_t>(a)];
      while (rpo_index_[static_cast<std::size_t>(b)] >
             rpo_index_[static_cast<std::size_t>(a)])
        b = idom_[static_cast<std::size_t>(b)];
    }
    return a;
  };
  idom_[static_cast<std::size_t>(entry)] = entry;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 1; i < g.rpo.size(); ++i) {
      int b = g.rpo[i];
      int new_idom = -1;
      for (int p : g.preds[static_cast<std::size_t>(b)]) {
        if (idom_[static_cast<std::size_t>(p)] < 0) continue;  // unprocessed
        new_idom = new_idom < 0 ? p : intersect(p, new_idom);
      }
      if (new_idom >= 0 && idom_[static_cast<std::size_t>(b)] != new_idom) {
        idom_[static_cast<std::size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }
  // Convention: the entry has no immediate dominator.
  idom_[static_cast<std::size_t>(entry)] = -1;
}

bool DomTree::dominates(int a, int b) const {
  if (a == b) return true;
  if (b < 0 || static_cast<std::size_t>(b) >= idom_.size()) return false;
  int x = idom_[static_cast<std::size_t>(b)];
  while (x >= 0) {
    if (x == a) return true;
    x = idom_[static_cast<std::size_t>(x)];
  }
  return false;
}

DataflowResult solve_dataflow(const BlockGraph& g, const DataflowProblem& p) {
  std::size_t n = g.num_blocks();
  DataflowResult r;
  // Non-boundary init: top of the lattice (all-ones for intersection,
  // empty for union), so unreachable blocks never perturb the meet.
  r.in.assign(n, BitVec(p.bits, p.intersect));
  r.out.assign(n, BitVec(p.bits, p.intersect));

  std::vector<int> order = g.rpo;
  if (!p.forward) std::reverse(order.begin(), order.end());

  bool changed = true;
  while (changed) {
    changed = false;
    for (int b : order) {
      auto bi = static_cast<std::size_t>(b);
      if (p.forward) {
        // The entry starts from the boundary value and still meets any
        // predecessors (the entry block may be a branch target).
        bool entry = g.rpo_index[bi] == 0;
        BitVec in = entry ? p.boundary : BitVec(p.bits, p.intersect);
        for (int q : g.preds[bi]) {
          if (p.intersect)
            in.intersect_with(r.out[static_cast<std::size_t>(q)]);
          else
            in.union_with(r.out[static_cast<std::size_t>(q)]);
        }
        BitVec out = in;
        out.transfer(p.gen[bi], p.kill[bi]);
        if (!(in == r.in[bi]) || !(out == r.out[bi])) {
          r.in[bi] = std::move(in);
          r.out[bi] = std::move(out);
          changed = true;
        }
      } else {
        BitVec out(p.bits, p.intersect);
        const auto& succs = g.succs[bi];
        if (succs.empty()) {
          out = p.boundary;
        } else {
          for (int q : succs) {
            if (p.intersect)
              out.intersect_with(r.in[static_cast<std::size_t>(q)]);
            else
              out.union_with(r.in[static_cast<std::size_t>(q)]);
          }
        }
        BitVec in = out;
        in.transfer(p.gen[bi], p.kill[bi]);
        if (!(in == r.in[bi]) || !(out == r.out[bi])) {
          r.in[bi] = std::move(in);
          r.out[bi] = std::move(out);
          changed = true;
        }
      }
    }
  }
  return r;
}

std::vector<Reg> instr_uses(const Instr& in) {
  switch (in.op) {
    case Op::kConst:
    case Op::kFConst:
    case Op::kBr:
      return {};
    case Op::kMov:
    case Op::kAddI:
    case Op::kMulI:
    case Op::kI2F:
    case Op::kF2I:
    case Op::kLoad:
    case Op::kBrCond:
      return {in.a};
    case Op::kStore:
      return {in.a, in.b};
    case Op::kCall:
      return in.args;
    case Op::kRet:
      return in.a == ir::kNoReg ? std::vector<Reg>{} : std::vector<Reg>{in.a};
    default:
      // Two-operand arithmetic, compares, FP arithmetic.
      return {in.a, in.b};
  }
}

bool instr_writes(const Instr& in) {
  switch (in.op) {
    case Op::kStore:
    case Op::kBr:
    case Op::kBrCond:
    case Op::kRet:
      return false;
    default:
      return in.dst != ir::kNoReg;
  }
}

namespace {

// Shared gen/kill assembly for the register problems.
std::size_t reg_bits(const ir::Function& f) {
  return static_cast<std::size_t>(std::max(f.num_regs, f.num_args));
}

}  // namespace

ReachingDefs::ReachingDefs(const ir::Function& f, const BlockGraph& g)
    : func_(f) {
  // Entry pseudo-definitions for arguments, then every register write.
  for (int a = 0; a < f.num_args; ++a)
    defs_.push_back(DefSite{0, -1, a});
  for (const auto& bb : f.blocks) {
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      if (!instr_writes(bb.instrs[i])) continue;
      by_site_[{bb.id, static_cast<int>(i)}] = defs_.size();
      defs_.push_back(DefSite{bb.id, static_cast<int>(i), bb.instrs[i].dst});
    }
  }

  std::size_t n = g.num_blocks();
  DataflowProblem p;
  p.forward = true;
  p.intersect = false;
  p.bits = defs_.size();
  p.gen.assign(n, BitVec(p.bits));
  p.kill.assign(n, BitVec(p.bits));
  p.boundary = BitVec(p.bits);

  // Defs of each register, for kill sets.
  std::map<Reg, std::vector<std::size_t>> of_reg;
  for (std::size_t d = 0; d < defs_.size(); ++d)
    of_reg[defs_[d].reg].push_back(d);

  for (std::size_t d = 0; d < defs_.size(); ++d) {
    const DefSite& ds = defs_[d];
    auto bi = static_cast<std::size_t>(ds.block);
    // Is this the last def of its register in its block? (Pseudo-defs sit
    // at position -1, before every real instruction.)
    bool last = true;
    for (std::size_t e : of_reg[ds.reg]) {
      if (e == d || defs_[e].block != ds.block) continue;
      if (defs_[e].instr > ds.instr) last = false;
    }
    if (!last) continue;
    p.gen[bi].set(d);
    for (std::size_t e : of_reg[ds.reg])
      if (e != d) p.kill[bi].set(e);
  }
  // Entry pseudo-defs also reach IN of the entry block.
  for (int a = 0; a < f.num_args; ++a) p.boundary.set(static_cast<std::size_t>(a));

  sol_ = solve_dataflow(g, p);
}

bool ReachingDefs::reaches(std::size_t d, int use_block, int use_instr) const {
  const DefSite& ds = defs_[d];
  const auto& instrs = func_.blocks[static_cast<std::size_t>(use_block)].instrs;
  // Last definition of the register locally before the use point wins.
  // (Argument pseudo-defs sit before instruction 0 of the entry and are
  // part of IN[entry] via the boundary value.)
  for (int i = use_instr - 1; i >= 0; --i) {
    const Instr& in = instrs[static_cast<std::size_t>(i)];
    if (instr_writes(in) && in.dst == ds.reg)
      return ds.block == use_block && ds.instr == i;
  }
  return sol_.in[static_cast<std::size_t>(use_block)].test(d);
}

bool ReachingDefs::def_reaches(int def_block, int def_instr, int use_block,
                               int use_instr) const {
  auto it = by_site_.find({def_block, def_instr});
  if (it == by_site_.end()) return false;
  return reaches(it->second, use_block, use_instr);
}

Liveness::Liveness(const ir::Function& f, const BlockGraph& g) {
  std::size_t n = g.num_blocks();
  DataflowProblem p;
  p.forward = false;
  p.intersect = false;
  p.bits = reg_bits(f);
  p.gen.assign(n, BitVec(p.bits));   // upward-exposed uses
  p.kill.assign(n, BitVec(p.bits));  // defs
  p.boundary = BitVec(p.bits);
  for (const auto& bb : f.blocks) {
    auto bi = static_cast<std::size_t>(bb.id);
    BitVec defined(p.bits);
    for (const auto& in : bb.instrs) {
      for (Reg r : instr_uses(in))
        if (r >= 0 && !defined.test(static_cast<std::size_t>(r)))
          p.gen[bi].set(static_cast<std::size_t>(r));
      if (instr_writes(in)) {
        defined.set(static_cast<std::size_t>(in.dst));
        p.kill[bi].set(static_cast<std::size_t>(in.dst));
      }
    }
  }
  sol_ = solve_dataflow(g, p);
}

bool Liveness::live_in(int block, Reg r) const {
  return r >= 0 && sol_.in[static_cast<std::size_t>(block)].test(
                       static_cast<std::size_t>(r));
}

bool Liveness::live_out(int block, Reg r) const {
  return r >= 0 && sol_.out[static_cast<std::size_t>(block)].test(
                       static_cast<std::size_t>(r));
}

MustDefined::MustDefined(const ir::Function& f, const BlockGraph& g)
    : func_(f), graph_(g) {
  std::size_t n = g.num_blocks();
  DataflowProblem p;
  p.forward = true;
  p.intersect = true;
  p.bits = reg_bits(f);
  p.gen.assign(n, BitVec(p.bits));
  p.kill.assign(n, BitVec(p.bits));  // nothing un-defines a register
  p.boundary = BitVec(p.bits);
  for (int a = 0; a < f.num_args; ++a) p.boundary.set(static_cast<std::size_t>(a));
  for (const auto& bb : f.blocks) {
    auto bi = static_cast<std::size_t>(bb.id);
    for (const auto& in : bb.instrs)
      if (instr_writes(in)) p.gen[bi].set(static_cast<std::size_t>(in.dst));
  }
  sol_ = solve_dataflow(g, p);
}

bool MustDefined::defined_before(int block, int instr, Reg r) const {
  if (r < 0 || static_cast<std::size_t>(r) >= sol_.in.front().size())
    return false;
  if (!graph_.reachable(block)) return true;  // vacuous: never executed
  const auto& instrs = func_.blocks[static_cast<std::size_t>(block)].instrs;
  for (int i = 0; i < instr; ++i) {
    const Instr& in = instrs[static_cast<std::size_t>(i)];
    if (instr_writes(in) && in.dst == r) return true;
  }
  return sol_.in[static_cast<std::size_t>(block)].test(
      static_cast<std::size_t>(r));
}

}  // namespace pp::verify
