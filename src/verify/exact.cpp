#include "verify/exact.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "poly/polyhedron.hpp"
#include "support/int_math.hpp"

namespace pp::verify::exact {

const char* pair_verdict_name(PairVerdict v) {
  switch (v) {
    case PairVerdict::kIndependent: return "independent";
    case PairVerdict::kDependent: return "dependent";
    case PairVerdict::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

using statican::AccessInfo;
using statican::FunctionModel;

/// Can the two bases be subtracted away? Either both global (offsets are
/// absolute addresses) or both relative to the SAME argument.
bool comparable_bases(const AccessInfo& x, const AccessInfo& y) {
  if (x.base_arg < 0 && y.base_arg < 0) return true;
  return x.base_arg >= 0 && x.base_arg == y.base_arg;
}

std::vector<std::pair<int, i64>> coeff_list(const AccessInfo& a) {
  std::vector<std::pair<int, i64>> out;
  for (const auto& [l, c] : a.coeffs)
    if (c != 0) out.emplace_back(l, c);
  return out;
}

/// The dependence system of a site pair: variables are x's coefficient
/// loops (ascending loop id) followed by y's, constrained by the address
/// equality and by every IV range the model recovered. Loops with unknown
/// ranges stay unbounded — the Omega core still reasons about them exactly
/// (so kInfeasible remains a theorem), they just widen kFeasible.
struct PairSystem {
  poly::Polyhedron p;
  std::vector<int> x_loops;
  std::vector<int> y_loops;
  bool comparable = false;
};

PairSystem pair_system(const AccessInfo& x, const FunctionModel& fmx,
                       const AccessInfo& y, const FunctionModel& fmy) {
  PairSystem s;
  if (!x.affine || !y.affine || !comparable_bases(x, y)) return s;
  const auto cx = coeff_list(x);
  const auto cy = coeff_list(y);
  const std::size_t dim = cx.size() + cy.size();
  poly::Polyhedron p(dim);
  std::vector<i64> ec(dim, 0);
  std::size_t v = 0;
  for (const auto& [l, c] : cx) {
    s.x_loops.push_back(l);
    ec[v] = c;
    const auto it = fmx.bounds.find(l);
    if (it != fmx.bounds.end() && it->second.known)
      p.bound_var(v, it->second.lo, it->second.hi);
    ++v;
  }
  for (const auto& [l, c] : cy) {
    s.y_loops.push_back(l);
    ec[v] = -c;
    const auto it = fmy.bounds.find(l);
    if (it != fmy.bounds.end() && it->second.known)
      p.bound_var(v, it->second.lo, it->second.hi);
    ++v;
  }
  p.add_eq0(poly::AffineExpr(std::move(ec), x.offset - y.offset));
  s.p = std::move(p);
  s.comparable = true;
  return s;
}

poly::Feas feas_leq(const poly::Polyhedron& p, const poly::AffineExpr& e,
                    i64 k) {
  poly::Polyhedron q = p;
  q.add_ge0(e * -1 + k);  // e <= k
  return poly::integer_feasible(q);
}

poly::Feas feas_geq(const poly::Polyhedron& p, const poly::AffineExpr& e,
                    i64 k) {
  poly::Polyhedron q = p;
  q.add_ge0(e + (-k));  // e >= k
  return poly::integer_feasible(q);
}

PairVerdict verdict_of(const PairSystem& s) {
  if (!s.comparable) return PairVerdict::kUnknown;
  switch (poly::integer_feasible(s.p)) {
    case poly::Feas::kFeasible: return PairVerdict::kDependent;
    case poly::Feas::kInfeasible: return PairVerdict::kIndependent;
    case poly::Feas::kUnknown: return PairVerdict::kUnknown;
  }
  return PairVerdict::kUnknown;
}

}  // namespace

ExactDeps::ExactDeps(const ir::Module& m, const ir::Function& f)
    : may_(m, f) {
  const std::size_t n = model().accesses.size();
  cache_.assign(n * n, PairVerdict::kUnknown);
  cached_.assign(n * n, false);
}

std::size_t ExactDeps::index_of(int block, int instr) const {
  const auto& acc = model().accesses;
  for (std::size_t i = 0; i < acc.size(); ++i)
    if (acc[i].block == block && acc[i].instr == instr) return i;
  return acc.size();
}

PairVerdict ExactDeps::verdict_by_index(std::size_t i, std::size_t j) const {
  if (i > j) std::swap(i, j);
  const std::size_t n = model().accesses.size();
  const std::size_t key = i * n + j;
  if (cached_[key]) return cache_[key];
  const PairVerdict v = verdict_of(pair_system(
      model().accesses[i], model(), model().accesses[j], model()));
  cached_[key] = true;
  cache_[key] = v;
  return v;
}

PairVerdict ExactDeps::pair_verdict(int src_block, int src_instr,
                                    int dst_block, int dst_instr) const {
  const std::size_t i = index_of(src_block, src_instr);
  const std::size_t j = index_of(dst_block, dst_instr);
  const std::size_t n = model().accesses.size();
  if (i >= n || j >= n || i == j) return PairVerdict::kUnknown;
  return verdict_by_index(i, j);
}

std::optional<DepVector> ExactDeps::dep_vector(int src_block, int src_instr,
                                               int dst_block,
                                               int dst_instr) const {
  const std::size_t i = index_of(src_block, src_instr);
  const std::size_t j = index_of(dst_block, dst_instr);
  const std::size_t n = model().accesses.size();
  if (i >= n || j >= n) return std::nullopt;
  const PairSystem s = pair_system(model().accesses[i], model(),
                                   model().accesses[j], model());
  if (!s.comparable) return std::nullopt;
  if (poly::integer_feasible(s.p) == poly::Feas::kInfeasible)
    return std::nullopt;

  DepVector dv;
  const std::size_t dim = s.p.dim();
  for (std::size_t vi = 0; vi < s.x_loops.size(); ++vi) {
    const int loop = s.x_loops[vi];
    const auto wit =
        std::find(s.y_loops.begin(), s.y_loops.end(), loop);
    if (wit == s.y_loops.end()) continue;
    const std::size_t wi =
        s.x_loops.size() +
        static_cast<std::size_t>(wit - s.y_loops.begin());
    // delta = dst IV - src IV for this shared loop.
    std::vector<i64> dc(dim, 0);
    dc[wi] = 1;
    dc[vi] = -1;
    const poly::AffineExpr delta(std::move(dc), 0);

    auto feas_with = [&](int rel) {  // rel: +1 (>=1), 0 (==0), -1 (<=-1)
      poly::Polyhedron q = s.p;
      if (rel > 0)
        q.add_ge0(delta + (-1));
      else if (rel < 0)
        q.add_ge0(delta * -1 + (-1));
      else
        q.add_eq0(delta);
      return poly::integer_feasible(q);
    };
    const poly::Feas pos = feas_with(1);
    const poly::Feas zer = feas_with(0);
    const poly::Feas neg = feas_with(-1);
    const bool unk = pos == poly::Feas::kUnknown ||
                     zer == poly::Feas::kUnknown ||
                     neg == poly::Feas::kUnknown;
    const int nf = (pos == poly::Feas::kFeasible ? 1 : 0) +
                   (zer == poly::Feas::kFeasible ? 1 : 0) +
                   (neg == poly::Feas::kFeasible ? 1 : 0);
    char dir = '*';
    if (!unk && nf == 1) {
      dir = pos == poly::Feas::kFeasible   ? '<'
            : zer == poly::Feas::kFeasible ? '='
                                           : '>';
    }
    // Exact integer extremes of delta: the rational optima only bracket
    // them (the relaxation has slack wherever strides interact), so binary
    // search the bracket with the integer test.
    auto int_extreme = [&](bool want_min) -> std::optional<i64> {
      const poly::BoundResult mn = s.p.minimize(delta);
      const poly::BoundResult mx = s.p.maximize(delta);
      if (mn.status != poly::LpStatus::kOptimal ||
          mx.status != poly::LpStatus::kOptimal)
        return std::nullopt;
      i64 lo = narrow_i64(mn.value.ceil());
      i64 hi = narrow_i64(mx.value.floor());
      while (lo < hi) {
        if (want_min) {
          const i64 mid = narrow_i64(floor_div(i128{lo} + hi, 2));
          switch (feas_leq(s.p, delta, mid)) {
            case poly::Feas::kFeasible: hi = mid; break;
            case poly::Feas::kInfeasible: lo = mid + 1; break;
            case poly::Feas::kUnknown: return std::nullopt;
          }
        } else {
          const i64 mid = narrow_i64(ceil_div(i128{lo} + hi, 2));
          switch (feas_geq(s.p, delta, mid)) {
            case poly::Feas::kFeasible: lo = mid; break;
            case poly::Feas::kInfeasible: hi = mid - 1; break;
            case poly::Feas::kUnknown: return std::nullopt;
          }
        }
      }
      return lo;
    };
    std::optional<i64> dist;
    if (!unk) {
      const std::optional<i64> dmin = int_extreme(true);
      const std::optional<i64> dmax = int_extreme(false);
      if (dmin && dmax && *dmin == *dmax) dist = *dmin;
    }
    dv.loops.push_back(loop);
    dv.dirs.push_back(dir);
    dv.dist.push_back(dist);
  }
  return dv;
}

statican::AccessClass ExactDeps::site_class(int block, int instr) const {
  const auto& acc = model().accesses;
  const std::size_t i = index_of(block, instr);
  if (i == acc.size()) return statican::AccessClass::kDynamicRequired;
  const statican::AccessClass cls = acc[i].cls;
  if (cls != statican::AccessClass::kStaticExact) return cls;
  for (std::size_t j = 0; j < acc.size(); ++j) {
    if (j == i) continue;
    if (!acc[i].is_store && !acc[j].is_store) continue;
    if (verdict_by_index(i, j) == PairVerdict::kUnknown)
      return statican::AccessClass::kWeaklyDynamic;
  }
  return statican::AccessClass::kStaticExact;
}

ExactDeps::Summary ExactDeps::summary() const {
  Summary s;
  const auto& acc = model().accesses;
  for (const AccessInfo& a : acc)
    ++s.classes[static_cast<int>(site_class(a.block, a.instr))];
  for (std::size_t i = 0; i < acc.size(); ++i) {
    for (std::size_t j = i + 1; j < acc.size(); ++j) {
      if (!acc[i].is_store && !acc[j].is_store) continue;
      ++s.pairs;
      switch (verdict_by_index(i, j)) {
        case PairVerdict::kIndependent: ++s.independent; break;
        case PairVerdict::kDependent: ++s.dependent; break;
        case PairVerdict::kUnknown: ++s.unknown; break;
      }
    }
  }
  return s;
}

ddg::SelectivePlan compute_selective_plan(const ir::Module& m) {
  ddg::SelectivePlan plan;
  plan.funcs.resize(m.functions.size());

  struct Site {
    int func = -1;
    const AccessInfo* a = nullptr;
    const FunctionModel* fm = nullptr;
    i128 wlo = 0, whi = 0;  ///< inclusive shadow-word range (byte >> 3)
  };
  std::vector<FunctionModel> models(m.functions.size());
  std::vector<Site> sites;
  for (const ir::Function& f : m.functions) {
    if (f.blocks.empty()) continue;
    auto& fm = models[static_cast<std::size_t>(f.id)];
    fm = statican::model_function(m, f);
    for (const AccessInfo& a : fm.accesses) {
      bool known = a.modeled && a.base_arg < 0;
      i128 lo = a.offset, hi = a.offset;
      if (known) {
        for (const auto& [l, c] : a.coeffs) {
          if (c == 0) continue;
          const auto it = fm.bounds.find(l);
          if (it == fm.bounds.end() || !it->second.known) {
            known = false;
            break;
          }
          const i128 cl = c;
          if (cl > 0) {
            lo += cl * it->second.lo;
            hi += cl * it->second.hi;
          } else {
            lo += cl * it->second.hi;
            hi += cl * it->second.lo;
          }
        }
      }
      if (!known) {
        // One unanalyzable access could touch any address: poison the
        // whole plan, remembering the first offender (program order, so
        // the reason is deterministic).
        if (plan.poison_reason.empty()) {
          plan.poison_reason = f.name + " b" + std::to_string(a.block) +
                               ":i" + std::to_string(a.instr) +
                               " not statically bounded (" +
                               statican::access_class_name(a.cls) + ")";
        }
        continue;
      }
      sites.push_back({f.id, &a, &fm, floor_div(lo, 8), floor_div(hi, 8)});
    }
  }
  if (!plan.poison_reason.empty()) return plan;

  // Word-range overlap components: sort by range start and sweep. Ranges
  // are inclusive, so a site joins the open component iff wlo <= cur_hi.
  std::vector<std::size_t> order(sites.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Site& x = sites[a];
    const Site& y = sites[b];
    return std::tie(x.wlo, x.whi, x.func, x.a->block, x.a->instr) <
           std::tie(y.wlo, y.whi, y.func, y.a->block, y.a->instr);
  });
  std::vector<std::vector<std::size_t>> comps;
  i128 cur_hi = 0;
  for (const std::size_t idx : order) {
    if (comps.empty() || sites[idx].wlo > cur_hi) {
      comps.emplace_back();
      cur_hi = sites[idx].whi;
    } else {
      cur_hi = std::max(cur_hi, sites[idx].whi);
    }
    comps.back().push_back(idx);
  }

  for (const std::vector<std::size_t>& comp : comps) {
    bool free_of_deps = true;
    for (std::size_t i = 0; i < comp.size() && free_of_deps; ++i) {
      for (std::size_t j = i + 1; j < comp.size(); ++j) {
        const Site& x = sites[comp[i]];
        const Site& y = sites[comp[j]];
        if (x.a->is_store == y.a->is_store) continue;  // flow needs both
        const PairSystem s = pair_system(*x.a, *x.fm, *y.a, *y.fm);
        if (verdict_of(s) != PairVerdict::kIndependent) {
          free_of_deps = false;
          break;
        }
      }
    }
    if (!free_of_deps) continue;
    ++plan.groups;
    for (const std::size_t idx : comp) {
      plan.funcs[static_cast<std::size_t>(sites[idx].func)].sites.insert(
          {sites[idx].a->block, sites[idx].a->instr});
    }
  }
  return plan;
}

std::string precision_section(const ir::Module& m,
                              support::ThreadPool* pool) {
  std::vector<const ir::Function*> funcs;
  for (const ir::Function& f : m.functions)
    if (!f.blocks.empty()) funcs.push_back(&f);

  std::vector<std::string> slots(funcs.size());
  auto render = [&](std::size_t i) {
    const ir::Function& f = *funcs[i];
    const ExactDeps ex(m, f);
    if (ex.model().accesses.empty()) return;  // slot stays empty
    const ExactDeps::Summary s = ex.summary();
    std::ostringstream os;
    os << "  " << f.name << ": " << s.classes[0] << " static-exact, "
       << s.classes[1] << " weakly-dynamic, " << s.classes[2]
       << " dynamic-required; " << s.pairs << " store pair(s): "
       << s.independent << " independent, " << s.dependent << " dependent, "
       << s.unknown << " undecided\n";
    slots[i] = os.str();
  };
  if (pool) {
    pool->parallel_for(funcs.size(), render);
  } else {
    for (std::size_t i = 0; i < funcs.size(); ++i) render(i);
  }

  std::ostringstream os;
  for (const std::string& s : slots) os << s;
  const ddg::SelectivePlan plan = compute_selective_plan(m);
  if (plan.total_sites() > 0) {
    os << "  selective plan: " << plan.total_sites()
       << " skippable site(s) in " << plan.groups
       << " dependence-free group(s)\n";
  } else if (!plan.poison_reason.empty()) {
    os << "  selective plan: empty (" << plan.poison_reason << ")\n";
  } else {
    os << "  selective plan: empty (no dependence-free group)\n";
  }
  return os.str();
}

}  // namespace pp::verify::exact
