// The analysis framework under pp::verify: a reverse-postorder block graph
// over the *static* CFG of a function, an immediate-dominator tree
// (Cooper-Harvey-Kennedy), and a small generic bit-vector dataflow engine
// with the three canned instances the verifier and the soundness oracle
// need — reaching definitions (may/forward), liveness (may/backward) and
// must-defined registers (must/forward, the dominance-based def-before-use
// check).
//
// Everything here assumes the function already passed the STRUCTURAL half
// of the verifier (non-empty blocks, single trailing terminator, branch
// targets in range); run verify_module first on untrusted IR.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "ir/ir.hpp"

namespace pp::verify {

/// Dense fixed-size bit vector (the dataflow lattice element).
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n, bool ones = false)
      : n_(n), w_((n + 63) / 64, ones ? ~u64{0} : u64{0}) {
    trim();
  }

  std::size_t size() const { return n_; }
  void set(std::size_t i) { w_[i >> 6] |= u64{1} << (i & 63); }
  void reset(std::size_t i) { w_[i >> 6] &= ~(u64{1} << (i & 63)); }
  bool test(std::size_t i) const { return (w_[i >> 6] >> (i & 63)) & 1; }

  /// this |= o. Returns true when any bit changed.
  bool union_with(const BitVec& o);
  /// this &= o. Returns true when any bit changed.
  bool intersect_with(const BitVec& o);
  /// this = (this & ~kill) | gen (the standard transfer function).
  void transfer(const BitVec& gen, const BitVec& kill);

  bool operator==(const BitVec& o) const = default;

 private:
  void trim() {
    if (n_ % 64 != 0 && !w_.empty()) w_.back() &= (u64{1} << (n_ % 64)) - 1;
  }
  std::size_t n_ = 0;
  std::vector<u64> w_;
};

/// Adjacency of one function's static CFG, by block id, plus a reverse
/// postorder of the blocks reachable from the entry.
struct BlockGraph {
  explicit BlockGraph(const ir::Function& f);

  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;
  std::vector<int> rpo;        ///< reachable blocks, reverse postorder
  std::vector<int> rpo_index;  ///< block -> rpo position, -1 if unreachable

  bool reachable(int b) const {
    return b >= 0 && static_cast<std::size_t>(b) < rpo_index.size() &&
           rpo_index[static_cast<std::size_t>(b)] >= 0;
  }
  std::size_t num_blocks() const { return succs.size(); }
};

/// Immediate-dominator tree over the reachable blocks.
class DomTree {
 public:
  explicit DomTree(const BlockGraph& g);

  /// Immediate dominator of `b`; -1 for the entry and unreachable blocks.
  int idom(int b) const { return idom_[static_cast<std::size_t>(b)]; }
  /// Reflexive dominance: does `a` dominate `b`? Unreachable blocks are
  /// dominated by nothing and dominate nothing (except themselves).
  bool dominates(int a, int b) const;

 private:
  std::vector<int> idom_;
  std::vector<int> rpo_index_;
};

/// A generic iterative bit-vector dataflow problem over a BlockGraph.
struct DataflowProblem {
  bool forward = true;
  bool intersect = false;  ///< meet: false = union (may), true = must
  std::size_t bits = 0;
  std::vector<BitVec> gen;   ///< per block id
  std::vector<BitVec> kill;  ///< per block id
  BitVec boundary;           ///< IN[entry] (forward) / OUT[exit] (backward)
};

struct DataflowResult {
  std::vector<BitVec> in;   ///< value before the block's first instruction
  std::vector<BitVec> out;  ///< value after the block's terminator
};

/// Round-robin iteration over (reverse) postorder to a fixpoint.
DataflowResult solve_dataflow(const BlockGraph& g, const DataflowProblem& p);

/// Registers READ by an instruction at runtime: a/b operand slots per
/// opcode, call arguments (pass-through values), and the returned register.
std::vector<ir::Reg> instr_uses(const ir::Instr& in);
/// Does the instruction write its `dst` register? (Stores, branches and
/// returns do not; calls with a result do.)
bool instr_writes(const ir::Instr& in);

/// One definition site. `instr == -1` marks the entry pseudo-definition of
/// an argument register.
struct DefSite {
  int block = -1;
  int instr = -1;
  ir::Reg reg = ir::kNoReg;
};

/// Reaching definitions (may, forward).
class ReachingDefs {
 public:
  ReachingDefs(const ir::Function& f, const BlockGraph& g);

  const std::vector<DefSite>& defs() const { return defs_; }
  /// May the definition written by instruction (def_block, def_instr)
  /// reach the program point just BEFORE instruction (use_block,
  /// use_instr)? False when that instruction defines nothing.
  bool def_reaches(int def_block, int def_instr, int use_block,
                   int use_instr) const;

 private:
  bool reaches(std::size_t d, int use_block, int use_instr) const;

  const ir::Function& func_;
  std::vector<DefSite> defs_;
  std::map<std::pair<int, int>, std::size_t> by_site_;
  DataflowResult sol_;
};

/// Liveness (may, backward) over registers.
class Liveness {
 public:
  Liveness(const ir::Function& f, const BlockGraph& g);
  bool live_in(int block, ir::Reg r) const;
  bool live_out(int block, ir::Reg r) const;

 private:
  DataflowResult sol_;
};

/// Must-defined registers (must, forward): the dominance-based
/// def-before-use verdict. A register is "defined before" a point when
/// every path from the entry to that point writes it first; arguments
/// count as defined at entry.
class MustDefined {
 public:
  MustDefined(const ir::Function& f, const BlockGraph& g);
  /// Is `r` defined on every path reaching the point just before
  /// instruction `instr` of `block`? Unreachable blocks are vacuously true.
  bool defined_before(int block, int instr, ir::Reg r) const;

 private:
  const ir::Function& func_;
  const BlockGraph& graph_;
  DataflowResult sol_;
};

}  // namespace pp::verify
