// Seeded IR mutator for verifier mutation testing: injects exactly one
// defect of a chosen class into a module. Deterministic in (module, class,
// seed) — the RNG is a splitmix64 stream, no wall-clock anywhere — and
// total: defects are *injected* (synthesized) when no existing site can be
// corrupted, so every class applies to every structurally valid module.
#pragma once

#include <array>
#include <string>

#include "ir/ir.hpp"
#include "statican/statican.hpp"
#include "verify/verifier.hpp"

namespace pp::verify {

enum class DefectClass : std::uint8_t {
  kDanglingBranch,      ///< branch target past the last block
  kMissingTerminator,   ///< block no longer ends in a terminator
  kUseBeforeDef,        ///< read of a register with no def on any path
  kBadCallArity,        ///< call with the wrong argument count
  kOutOfRangeRegister,  ///< register operand past num_regs
};

inline constexpr std::array<DefectClass, 5> kAllDefectClasses = {
    DefectClass::kDanglingBranch, DefectClass::kMissingTerminator,
    DefectClass::kUseBeforeDef, DefectClass::kBadCallArity,
    DefectClass::kOutOfRangeRegister};

const char* defect_class_name(DefectClass c);

/// The verifier issue code a defect of this class must produce.
IssueCode expected_issue(DefectClass c);

/// Where and what was mutated (for test diagnostics).
struct Mutation {
  DefectClass cls{};
  int func = -1;
  int block = -1;
  int instr = -1;
  std::string description;
};

/// Apply one seeded defect of class `cls` to `m` in place. Requires a
/// module with at least one function with at least one block.
Mutation mutate(ir::Module& m, DefectClass cls, u64 seed);

/// Semantics-preserving access-class mutations, the exact analysis's
/// false-negative guard: flip a kStaticExact access site down the
/// classification lattice without changing what the program computes, then
/// assert the classifier downgrades it and the selective plan refuses to
/// skip it.
enum class AccessMutation : std::uint8_t {
  /// Launder the block's branch condition through loaded data: the block
  /// gains reason 'B' (data-dependent conditional) and the access drops to
  /// kWeaklyDynamic. The laundered condition evaluates to the original
  /// value, so control flow is unchanged.
  kWeaklyDynamic,
  /// Route the access address through loaded data (addr + (x - x)): the
  /// address is no longer statically affine and the access drops to
  /// kDynamicRequired. The detour adds zero, so the address is unchanged.
  kDynamicRequired,
};

inline constexpr std::array<AccessMutation, 2> kAllAccessMutations = {
    AccessMutation::kWeaklyDynamic, AccessMutation::kDynamicRequired};

const char* access_mutation_name(AccessMutation c);

/// The exact class the mutated site must land on.
statican::AccessClass expected_access_class(AccessMutation c);

/// Where the access mutation landed. func == -1: the module has no
/// kStaticExact site whose block shape supports this mutation.
struct AccessMutationResult {
  AccessMutation cls{};
  int func = -1;
  int block = -1;
  int instr = -1;  ///< index of the mutated access AFTER insertions
  std::string description;
};

/// Apply one seeded, semantics-preserving access-class mutation in place.
AccessMutationResult mutate_access(ir::Module& m, AccessMutation cls,
                                   u64 seed);

}  // namespace pp::verify
