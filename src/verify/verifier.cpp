#include "verify/verifier.hpp"

#include <sstream>

#include "statican/statican.hpp"
#include "verify/dataflow.hpp"

namespace pp::verify {

using ir::Function;
using ir::Instr;
using ir::Module;
using ir::Op;
using ir::Reg;

const char* issue_code_name(IssueCode c) {
  switch (c) {
    case IssueCode::kNoBlocks: return "no-blocks";
    case IssueCode::kBlockIdMismatch: return "block-id-mismatch";
    case IssueCode::kEmptyBlock: return "empty-block";
    case IssueCode::kMissingTerminator: return "missing-terminator";
    case IssueCode::kMidBlockTerminator: return "mid-block-terminator";
    case IssueCode::kBadBranchTarget: return "dangling-branch-target";
    case IssueCode::kBadRegister: return "register-out-of-range";
    case IssueCode::kBadCallTarget: return "bad-call-target";
    case IssueCode::kBadCallArity: return "call-arity-mismatch";
    case IssueCode::kUseBeforeDef: return "use-before-def";
    case IssueCode::kMisalignedAccess: return "misaligned-access";
  }
  return "?";
}

std::string Issue::str() const {
  std::ostringstream os;
  os << "[" << support::severity_name(severity) << "] "
     << issue_code_name(code) << ": " << message;
  return os.str();
}

bool VerifyReport::ok() const {
  for (const auto& i : issues)
    if (i.severity == support::Severity::kError) return false;
  return true;
}

bool VerifyReport::has(IssueCode c) const { return count(c) > 0; }

std::size_t VerifyReport::count(IssueCode c) const {
  std::size_t n = 0;
  for (const auto& i : issues)
    if (i.code == c) ++n;
  return n;
}

std::string VerifyReport::str() const {
  std::string out;
  for (const auto& i : issues) {
    out += i.str();
    out += '\n';
  }
  return out;
}

void VerifyReport::to_log(support::DiagnosticLog& log) const {
  for (const auto& i : issues)
    log.add(i.severity, support::Stage::kVerify,
            std::string(issue_code_name(i.code)) + ": " + i.message);
}

namespace {

class Verifier {
 public:
  Verifier(const Module& m, const VerifyOptions& opts) : m_(m), opts_(opts) {}

  VerifyReport run() {
    for (const auto& f : m_.functions) {
      bool structural_ok = check_structure(f);
      // Dataflow and alignment need a well-formed CFG to traverse.
      if (!structural_ok || full()) continue;
      check_def_before_use(f);
      if (opts_.check_alignment) check_alignment(f);
    }
    return std::move(report_);
  }

 private:
  bool full() const { return report_.issues.size() >= opts_.max_issues; }

  void add(IssueCode code, support::Severity sev, const Function& f, int block,
           int instr, std::string msg) {
    if (full()) return;
    std::ostringstream os;
    os << f.name;
    if (block >= 0) os << " b" << block;
    if (instr >= 0) os << " i" << instr;
    os << ": " << msg;
    report_.issues.push_back(
        Issue{code, sev, f.id, block, instr, os.str()});
  }
  void error(IssueCode code, const Function& f, int block, int instr,
             std::string msg) {
    add(code, support::Severity::kError, f, block, instr, std::move(msg));
  }

  // Registers in range; used operand slots only (unused slots stay kNoReg).
  void check_registers(const Function& f, const ir::BasicBlock& bb, int i,
                       const Instr& in) {
    auto bad = [&](Reg r) { return r < 0 || r >= f.num_regs; };
    if (instr_writes(in) && bad(in.dst))
      error(IssueCode::kBadRegister, f, bb.id, i,
            "destination r" + std::to_string(in.dst) + " out of range (" +
                std::to_string(f.num_regs) + " registers)");
    for (Reg r : instr_uses(in))
      if (bad(r))
        error(IssueCode::kBadRegister, f, bb.id, i,
              "operand r" + std::to_string(r) + " out of range (" +
                  std::to_string(f.num_regs) + " registers)");
  }

  bool check_structure(const Function& f) {
    std::size_t before = report_.issues.size();
    std::size_t n_err = 0;
    auto errors = [&] {
      n_err = 0;
      for (std::size_t k = before; k < report_.issues.size(); ++k)
        if (report_.issues[k].severity == support::Severity::kError) ++n_err;
      return n_err;
    };
    if (f.blocks.empty()) {
      error(IssueCode::kNoBlocks, f, -1, -1, "function has no blocks");
      return false;
    }
    for (std::size_t b = 0; b < f.blocks.size(); ++b) {
      const auto& bb = f.blocks[b];
      if (bb.id != static_cast<int>(b))
        error(IssueCode::kBlockIdMismatch, f, static_cast<int>(b), -1,
              "block id " + std::to_string(bb.id) + " at position " +
                  std::to_string(b));
      if (bb.instrs.empty()) {
        error(IssueCode::kEmptyBlock, f, bb.id, -1, "block has no instructions");
        continue;
      }
      for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
        const Instr& in = bb.instrs[i];
        bool last = i + 1 == bb.instrs.size();
        if (last && !ir::op_is_terminator(in.op))
          error(IssueCode::kMissingTerminator, f, bb.id, static_cast<int>(i),
                std::string("block ends in ") + ir::op_name(in.op) +
                    ", not a terminator");
        if (!last && ir::op_is_terminator(in.op))
          error(IssueCode::kMidBlockTerminator, f, bb.id, static_cast<int>(i),
                std::string(ir::op_name(in.op)) + " before end of block");
        check_registers(f, bb, static_cast<int>(i), in);
        if (in.op == Op::kBr || in.op == Op::kBrCond) {
          auto target_ok = [&](i64 t) {
            return t >= 0 && static_cast<std::size_t>(t) < f.blocks.size();
          };
          if (!target_ok(in.imm))
            error(IssueCode::kBadBranchTarget, f, bb.id, static_cast<int>(i),
                  "branch target bb" + std::to_string(in.imm) + " (" +
                      std::to_string(f.blocks.size()) + " blocks)");
          if (in.op == Op::kBrCond && !target_ok(in.imm2))
            error(IssueCode::kBadBranchTarget, f, bb.id, static_cast<int>(i),
                  "branch target bb" + std::to_string(in.imm2) + " (" +
                      std::to_string(f.blocks.size()) + " blocks)");
        }
        if (in.op == Op::kCall) {
          if (in.imm < 0 ||
              static_cast<std::size_t>(in.imm) >= m_.functions.size()) {
            error(IssueCode::kBadCallTarget, f, bb.id, static_cast<int>(i),
                  "call to nonexistent function " + std::to_string(in.imm));
          } else {
            const Function& callee =
                m_.functions[static_cast<std::size_t>(in.imm)];
            if (static_cast<int>(in.args.size()) != callee.num_args)
              error(IssueCode::kBadCallArity, f, bb.id, static_cast<int>(i),
                    "call to " + callee.name + " with " +
                        std::to_string(in.args.size()) + " args, expects " +
                        std::to_string(callee.num_args));
          }
        }
      }
    }
    return errors() == 0;
  }

  // Def-before-use along ALL paths: must-defined registers at every use.
  void check_def_before_use(const Function& f) {
    BlockGraph g(f);
    MustDefined md(f, g);
    for (const auto& bb : f.blocks) {
      for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
        for (Reg r : instr_uses(bb.instrs[i])) {
          if (full()) return;
          if (!md.defined_before(bb.id, static_cast<int>(i), r))
            error(IssueCode::kUseBeforeDef, f, bb.id, static_cast<int>(i),
                  "r" + std::to_string(r) +
                      " read but not defined on every path from entry");
        }
      }
    }
  }

  // Alignment of statically modeled affine accesses: the VM requires every
  // effective address to be 8-byte aligned; when statican recovers the
  // whole access function we can prove (or refute) that statically.
  void check_alignment(const Function& f) {
    statican::FunctionModel model = statican::model_function(m_, f);
    for (const auto& acc : model.accesses) {
      if (!acc.affine || acc.base_arg >= 0) continue;  // unknown arg alignment
      bool coeffs_aligned = true;
      for (const auto& [loop, c] : acc.coeffs)
        if (c % 8 != 0) coeffs_aligned = false;
      if (full()) return;
      if (coeffs_aligned && acc.offset % 8 != 0) {
        error(IssueCode::kMisalignedAccess, f, acc.block, acc.instr,
              "affine address = " + std::to_string(acc.offset) +
                  " + 8k*IVs is provably not 8-byte aligned");
      } else if (!coeffs_aligned) {
        // Some IV assignment may misalign the address; the VM still checks
        // at runtime, so this is informational.
        add(IssueCode::kMisalignedAccess, support::Severity::kInfo, f,
            acc.block, acc.instr,
            "affine address has a non-multiple-of-8 IV coefficient; "
            "alignment depends on IV values");
      }
    }
  }

  const Module& m_;
  const VerifyOptions& opts_;
  VerifyReport report_;
};

}  // namespace

VerifyReport verify_module(const Module& m, const VerifyOptions& opts) {
  return Verifier(m, opts).run();
}

}  // namespace pp::verify
