// Layer 2 of pp::verify: a conservative static may-dependence tester over
// the access functions pp::statican recovers. Two memory accesses may
// depend when the diophantine equation
//     base_x + sum(cx_l * v_l) + off_x  ==  base_y + sum(cy_l * w_l) + off_y
// (v, w independent copies of the IV values, bounded by the recovered loop
// ranges) may have a solution. Independence is only claimed when the GCD
// test or Banerjee-style interval bounds *prove* there is none; every
// unmodeled situation — any R/C/B/F/A/P reason on the access, unknown
// bases, unknown bounds — conservatively answers "may depend".
#pragma once

#include <map>
#include <vector>

#include "statican/statican.hpp"

namespace pp::verify {

class MayDepSet {
 public:
  MayDepSet(const ir::Module& m, const ir::Function& f)
      : MayDepSet(statican::model_function(m, f)) {}
  explicit MayDepSet(statican::FunctionModel model);

  const statican::FunctionModel& model() const { return model_; }

  /// The access at (block, instr); nullptr when that site is not a memory
  /// instruction.
  const statican::AccessInfo* access(int block, int instr) const;
  /// Is (block, instr) a memory access that participates in static
  /// dependence testing (affine + reason-free block)?
  bool modeled(int block, int instr) const;

  /// Conservative aliasing: may `x` and `y` touch the same address?
  bool may_alias(const statican::AccessInfo& x,
                 const statican::AccessInfo& y) const;

  /// May there be a dependence between the two access sites? True unless
  /// both are loads (no dependence by definition) or the tester proves the
  /// addresses never coincide. Unmodeled sites answer true.
  bool may_depend(int src_block, int src_instr, int dst_block,
                  int dst_instr) const;

  /// Every modeled access pair (src before dst in program order, at least
  /// one store) that may alias — the function's static may-dependence set.
  struct Pair {
    int src_block, src_instr;
    int dst_block, dst_instr;
  };
  std::vector<Pair> all_pairs() const;

 private:
  statican::FunctionModel model_;
  std::map<std::pair<int, int>, std::size_t> by_site_;
};

}  // namespace pp::verify
