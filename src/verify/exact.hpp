// pp::verify::exact — exact static dependence analysis over the affine
// access functions pp::statican recovers (the precision tier above the
// GCD/Banerjee may-dep tester in static_deps.hpp).
//
// For a pair of accesses the dependence question is the integer system
//     sum(cx_l * v_l) + off_x  ==  sum(cy_l * w_l) + off_y
//     v, w inside the recovered IV ranges (omitted when unknown)
// over two INDEPENDENT copies of the induction variables. The Omega core
// (poly/omega.hpp) decides it exactly: kIndependent and kDependent are
// theorems; kUnknown means the effort cap tripped or the sites are not
// statically comparable (unmodeled, mixed bases) and callers must stay
// conservative.
//
// On top of the pair test sit
//   * distance/direction vectors per shared loop (classic '<'/'='/'>'),
//   * the three-way statement classification (statican::AccessClass): a
//     kStaticExact candidate keeps the class only when EVERY store-involved
//     pair it participates in is decided — otherwise it is downgraded to
//     kWeaklyDynamic,
//   * the module-wide selective-instrumentation plan: word-range overlap
//     components in which every (store, load) pair is proven independent
//     (see ddg/selective.hpp for the full byte-identity contract), and
//   * the deterministic "-- static precision --" report section.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ddg/selective.hpp"
#include "poly/omega.hpp"
#include "support/thread_pool.hpp"
#include "verify/static_deps.hpp"

namespace pp::verify::exact {

enum class PairVerdict : std::uint8_t {
  /// Proven: no two instances of the sites ever touch the same address.
  kIndependent,
  /// An integer instance pair inside the (soundly over-approximated) IV
  /// ranges touches the same address — a dependence no may-tester can
  /// refute. Not a witness of execution: the ranges include the widened
  /// exit value and loops the model cannot see.
  kDependent,
  /// Not statically comparable (unmodeled site, mixed bases) or the Omega
  /// effort cap tripped.
  kUnknown,
};

const char* pair_verdict_name(PairVerdict v);

/// Distance/direction vector of a dependence over the loops shared by the
/// two accesses (ascending loop id — outermost first for builder-shaped
/// nests). dirs[i] is '<', '=', '>' when the sign of (dst IV - src IV) is
/// fixed over every dependent instance pair, '*' otherwise; dist[i] carries
/// the exact distance when it is unique.
struct DepVector {
  std::vector<int> loops;
  std::string dirs;
  std::vector<std::optional<i64>> dist;
};

/// Exact dependence information for one function. Construction is cheap
/// (one statican model); pair verdicts are Omega tests, memoized per pair.
class ExactDeps {
 public:
  ExactDeps(const ir::Module& m, const ir::Function& f);

  const MayDepSet& may() const { return may_; }
  const statican::FunctionModel& model() const { return may_.model(); }

  /// Exact verdict for two DISTINCT access sites (self pairs answer
  /// kUnknown: instance-distinctness needs enclosing-loop information the
  /// access function does not carry).
  PairVerdict pair_verdict(int src_block, int src_instr, int dst_block,
                           int dst_instr) const;

  /// Distance/direction vector for a dependent (or possibly dependent)
  /// pair; nullopt when the pair is not statically comparable or proven
  /// independent.
  std::optional<DepVector> dep_vector(int src_block, int src_instr,
                                      int dst_block, int dst_instr) const;

  /// statican's classification refined by pairwise decidability: a
  /// kStaticExact candidate is downgraded to kWeaklyDynamic unless every
  /// store-involved pair with another memory site in the function is
  /// decided by the exact test.
  statican::AccessClass site_class(int block, int instr) const;

  struct Summary {
    int classes[3] = {0, 0, 0};  ///< indexed by statican::AccessClass
    u64 pairs = 0;               ///< distinct store-involved site pairs
    u64 independent = 0;
    u64 dependent = 0;
    u64 unknown = 0;
  };
  Summary summary() const;

 private:
  std::size_t index_of(int block, int instr) const;
  PairVerdict verdict_by_index(std::size_t i, std::size_t j) const;

  MayDepSet may_;
  mutable std::vector<PairVerdict> cache_;  ///< n*n matrix, lazily filled
  mutable std::vector<bool> cached_;
};

/// Module-wide selective-instrumentation plan (contract in
/// ddg/selective.hpp): dependence-free word-range overlap components of
/// reach-known accesses. Any access that is not reach-known — non-affine,
/// reasons on its block, argument base, or unknown IV bounds — poisons the
/// whole plan, because it could touch any address.
ddg::SelectivePlan compute_selective_plan(const ir::Module& m);

/// The deterministic "-- static precision --" report section: one line per
/// function with memory accesses (class counts + pair verdict counts) and
/// the selective-plan summary line. A pure function of the module — it
/// renders identically whether or not selective instrumentation ran.
/// `pool` (optional) fans the per-function analyses out into ordered slots.
std::string precision_section(const ir::Module& m,
                              support::ThreadPool* pool = nullptr);

}  // namespace pp::verify::exact
