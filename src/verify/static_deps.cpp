#include "verify/static_deps.hpp"

#include <cstdlib>
#include <numeric>

namespace pp::verify {

using statican::AccessInfo;
using statican::LoopBounds;

MayDepSet::MayDepSet(statican::FunctionModel model) : model_(std::move(model)) {
  for (std::size_t i = 0; i < model_.accesses.size(); ++i)
    by_site_[{model_.accesses[i].block, model_.accesses[i].instr}] = i;
}

const AccessInfo* MayDepSet::access(int block, int instr) const {
  auto it = by_site_.find({block, instr});
  return it == by_site_.end() ? nullptr : &model_.accesses[it->second];
}

bool MayDepSet::modeled(int block, int instr) const {
  const AccessInfo* a = access(block, instr);
  return a != nullptr && a->modeled;
}

bool MayDepSet::may_alias(const AccessInfo& x, const AccessInfo& y) const {
  if (!x.modeled || !y.modeled) return true;  // fall back to "may"

  // Bases: both global (absolute addressing, base folded into offset), or
  // the SAME argument (base cancels). Mixed/unrelated bases cannot be
  // compared statically.
  if (x.base_arg >= 0 || y.base_arg >= 0) {
    if (x.base_arg != y.base_arg) return true;
  }

  // Equation sum(cx_l * v_l) - sum(cy_l * w_l) = -(off_x - off_y) over the
  // two independent IV copies.
  i64 konst = x.offset - y.offset;
  struct Term {
    i64 coeff;
    int loop;
  };
  std::vector<Term> terms;
  for (const auto& [l, c] : x.coeffs)
    if (c != 0) terms.push_back({c, l});
  for (const auto& [l, c] : y.coeffs)
    if (c != 0) terms.push_back({-c, l});

  if (terms.empty()) return konst == 0;  // two fixed addresses

  // GCD test: a solution needs gcd(coeffs) | konst.
  i64 g = 0;
  for (const Term& t : terms) g = std::gcd(g, std::abs(t.coeff));
  if (g != 0 && konst % g != 0) return false;

  // Banerjee-style interval test: when every involved IV has a recovered
  // value range, bound sum(c_i * v_i) and check -konst falls inside.
  i64 lo = 0, hi = 0;
  for (const Term& t : terms) {
    auto it = model_.bounds.find(t.loop);
    if (it == model_.bounds.end() || !it->second.known) return true;
    const LoopBounds& b = it->second;
    if (t.coeff > 0) {
      lo += t.coeff * b.lo;
      hi += t.coeff * b.hi;
    } else {
      lo += t.coeff * b.hi;
      hi += t.coeff * b.lo;
    }
  }
  i64 target = -konst;
  if (target < lo || target > hi) return false;

  return true;  // no test proved independence
}

bool MayDepSet::may_depend(int src_block, int src_instr, int dst_block,
                           int dst_instr) const {
  const AccessInfo* x = access(src_block, src_instr);
  const AccessInfo* y = access(dst_block, dst_instr);
  if (x == nullptr || y == nullptr) return true;  // not memory: stay safe
  if (!x->is_store && !y->is_store) return false;  // load-load: no dep
  return may_alias(*x, *y);
}

std::vector<MayDepSet::Pair> MayDepSet::all_pairs() const {
  std::vector<Pair> out;
  for (std::size_t i = 0; i < model_.accesses.size(); ++i) {
    for (std::size_t j = i; j < model_.accesses.size(); ++j) {
      const AccessInfo& x = model_.accesses[i];
      const AccessInfo& y = model_.accesses[j];
      if (!x.modeled || !y.modeled) continue;
      if (!x.is_store && !y.is_store) continue;
      if (!may_alias(x, y)) continue;
      out.push_back(Pair{x.block, x.instr, y.block, y.instr});
    }
  }
  return out;
}

}  // namespace pp::verify
