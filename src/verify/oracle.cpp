#include "verify/oracle.hpp"

#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "verify/dataflow.hpp"
#include "verify/exact.hpp"

namespace pp::verify {

using poly::AffineExpr;
using poly::LpStatus;
using poly::Polyhedron;

// ---------------------------------------------------------------------------
// Part (a): dynamic ⊆ static.

namespace {

/// Per-function machinery for the containment check, built lazily: most
/// modules execute only a few of their functions.
struct FuncOracle {
  BlockGraph graph;
  ReachingDefs reaching;
  exact::ExactDeps ex;  ///< carries the MayDepSet (ex.may()) and the tier above
  std::set<ir::Reg> call_results;  ///< dsts of kCall (value pass-through)

  FuncOracle(const ir::Module& m, const ir::Function& f)
      : graph(f), reaching(f, graph), ex(m, f) {
    for (const auto& bb : f.blocks)
      for (const auto& in : bb.instrs)
        if (in.op == ir::Op::kCall && instr_writes(in))
          call_results.insert(in.dst);
  }
};

bool in_range(const ir::Function& f, const vm::CodeRef& r) {
  if (r.block < 0 || static_cast<std::size_t>(r.block) >= f.blocks.size())
    return false;
  const auto& bb = f.blocks[static_cast<std::size_t>(r.block)];
  return r.instr >= 0 && static_cast<std::size_t>(r.instr) < bb.instrs.size();
}

/// Can the register value `dst_ref` read have been produced by `src_ref`,
/// as far as the static CFG can tell? The DDG routes values through calls
/// (callee params inherit caller producers, returns flow into the call
/// dst), so parameter registers and call-result registers are wildcards —
/// their producer may legitimately be any same-function instruction.
bool reg_flow_plausible(const ir::Function& f, const FuncOracle& fo,
                        const vm::CodeRef& src_ref, const ir::Instr& src,
                        const vm::CodeRef& dst_ref, const ir::Instr& dst) {
  for (ir::Reg r : instr_uses(dst)) {
    if (r < f.num_args) return true;            // param pass-through
    if (fo.call_results.count(r)) return true;  // value through a call
    if (instr_writes(src) && src.dst == r &&
        fo.reaching.def_reaches(src_ref.block, src_ref.instr, dst_ref.block,
                                dst_ref.instr))
      return true;
  }
  return false;
}

}  // namespace

CoverageReport check_dynamic_coverage(const ir::Module& m,
                                      const fold::FoldedProgram& prog,
                                      support::ThreadPool* pool) {
  CoverageReport rep;
  std::map<int, std::unique_ptr<FuncOracle>> cache;
  if (pool != nullptr && !pool->serial()) {
    // Prefetch: collect every function the sweep below will consult (same
    // filters as the sweep) and build their dataflow oracles in parallel —
    // construction (CFG + reaching defs + may-dep set) dominates the cost.
    // The sweep itself stays serial, so violation order is unchanged.
    for (const fold::FoldedDep& d : prog.deps) {
      const vm::CodeRef s = prog.stmt(d.src).meta.code;
      const vm::CodeRef t = prog.stmt(d.dst).meta.code;
      if (s.func != t.func || s.func < 0 ||
          static_cast<std::size_t>(s.func) >= m.functions.size())
        continue;
      const ir::Function& f = m.functions[static_cast<std::size_t>(s.func)];
      if (in_range(f, s) && in_range(f, t)) cache.emplace(s.func, nullptr);
    }
    std::vector<std::pair<const int, std::unique_ptr<FuncOracle>>*> slots;
    slots.reserve(cache.size());
    for (auto& entry : cache) slots.push_back(&entry);
    pool->parallel_for(slots.size(), [&](std::size_t i) {
      slots[i]->second = std::make_unique<FuncOracle>(
          m, m.functions[static_cast<std::size_t>(slots[i]->first)]);
    });
  }
  auto oracle_for = [&](int func) -> FuncOracle& {
    auto& slot = cache[func];
    if (!slot)
      slot = std::make_unique<FuncOracle>(
          m, m.functions[static_cast<std::size_t>(func)]);
    return *slot;
  };

  for (std::size_t i = 0; i < prog.deps.size(); ++i) {
    const fold::FoldedDep& d = prog.deps[i];
    const vm::CodeRef s = prog.stmt(d.src).meta.code;
    const vm::CodeRef t = prog.stmt(d.dst).meta.code;
    // Interprocedural edges (value plumbing through calls, cross-function
    // memory reuse) have no intraprocedural static counterpart.
    if (s.func != t.func || s.func < 0 ||
        static_cast<std::size_t>(s.func) >= m.functions.size()) {
      ++rep.skipped;
      continue;
    }
    const ir::Function& f = m.functions[static_cast<std::size_t>(s.func)];
    if (!in_range(f, s) || !in_range(f, t)) {
      ++rep.skipped;
      continue;
    }
    FuncOracle& fo = oracle_for(s.func);
    const ir::Instr& si =
        f.blocks[static_cast<std::size_t>(s.block)]
            .instrs[static_cast<std::size_t>(s.instr)];
    const ir::Instr& ti =
        f.blocks[static_cast<std::size_t>(t.block)]
            .instrs[static_cast<std::size_t>(t.instr)];

    bool covered = true;
    bool exact_refuted = false;
    if (d.kind == ddg::DepKind::kRegFlow) {
      covered = reg_flow_plausible(f, fo, s, si, t, ti);
      ++rep.checked;
    } else {
      // Memory kinds: only pairs statican fully models carry a verdict.
      const MayDepSet& may = fo.ex.may();
      if (!may.modeled(s.block, s.instr) || !may.modeled(t.block, t.instr)) {
        ++rep.skipped;
        continue;
      }
      covered = may.may_depend(s.block, s.instr, t.block, t.instr);
      ++rep.checked;
      if (covered) {
        // Precision tier (dynamic ⊆ exact): a may-covered edge can still
        // be refuted by the Omega test — kIndependent is a theorem that no
        // two instances of the sites share an address, so an observed edge
        // means one of the two analyses is wrong.
        ++rep.exact_checked;
        if (fo.ex.pair_verdict(s.block, s.instr, t.block, t.instr) ==
            exact::PairVerdict::kIndependent) {
          covered = false;
          exact_refuted = true;
        }
      }
    }
    if (!covered) {
      CoverageViolation v;
      v.dep_index = static_cast<int>(i);
      v.src_stmt = d.src;
      v.dst_stmt = d.dst;
      v.kind = d.kind;
      std::ostringstream os;
      os << ddg::dep_kind_name(d.kind) << " edge s" << d.src << " -> s"
         << d.dst << " (" << f.name << " b" << s.block << ":i" << s.instr
         << " -> b" << t.block << ":i" << t.instr
         << ") observed dynamically but "
         << (exact_refuted ? "proven independent by the exact test"
                           : "statically impossible");
      v.message = os.str();
      rep.violations.push_back(std::move(v));
    }
  }
  return rep;
}

std::string CoverageReport::str() const {
  std::ostringstream os;
  os << "coverage: " << (ok() ? "ok" : "VIOLATED") << " (" << checked
     << " edges checked, " << exact_checked << " exact-re-checked, "
     << skipped << " skipped";
  if (!ok()) os << ", " << violations.size() << " uncovered";
  os << ")";
  for (const auto& v : violations) os << "\n  " << v.message;
  return os.str();
}

// ---------------------------------------------------------------------------
// Part (c): exact ⊆ may-dep — the static precision tier.

PrecisionReport check_precision_tier(const ir::Module& m,
                                     support::ThreadPool* pool) {
  PrecisionReport rep;
  std::vector<const ir::Function*> funcs;
  for (const ir::Function& f : m.functions)
    if (!f.blocks.empty()) funcs.push_back(&f);

  // The per-function analyses (statican model + memoized Omega verdicts)
  // dominate the cost and are independent: build them into ordered slots.
  std::vector<std::unique_ptr<exact::ExactDeps>> deps(funcs.size());
  auto build = [&](std::size_t i) {
    deps[i] = std::make_unique<exact::ExactDeps>(m, *funcs[i]);
  };
  if (pool != nullptr && !pool->serial()) {
    pool->parallel_for(funcs.size(), build);
  } else {
    for (std::size_t i = 0; i < funcs.size(); ++i) build(i);
  }

  // Serial sweep in program order: violation order is deterministic.
  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    const exact::ExactDeps& ex = *deps[fi];
    const auto& acc = ex.model().accesses;
    for (std::size_t i = 0; i < acc.size(); ++i) {
      for (std::size_t j = i + 1; j < acc.size(); ++j) {
        const statican::AccessInfo& x = acc[i];
        const statican::AccessInfo& y = acc[j];
        if (!x.is_store && !y.is_store) continue;
        if (!ex.may().modeled(x.block, x.instr) ||
            !ex.may().modeled(y.block, y.instr))
          continue;
        ++rep.pairs_checked;
        const bool may = ex.may().may_alias(x, y);
        const exact::PairVerdict v =
            ex.pair_verdict(x.block, x.instr, y.block, y.instr);
        if (!may && v == exact::PairVerdict::kDependent) {
          PrecisionViolation pv;
          pv.func = funcs[fi]->id;
          pv.src_block = x.block;
          pv.src_instr = x.instr;
          pv.dst_block = y.block;
          pv.dst_instr = y.instr;
          std::ostringstream os;
          os << funcs[fi]->name << " b" << x.block << ":i" << x.instr
             << " vs b" << y.block << ":i" << y.instr
             << ": may-tester proves the addresses disjoint but the exact "
                "test finds an integer instance pair touching the same word";
          pv.message = os.str();
          rep.violations.push_back(std::move(pv));
        } else if (may && v == exact::PairVerdict::kIndependent) {
          ++rep.refined;
        }
      }
    }
  }
  return rep;
}

std::string PrecisionReport::str() const {
  std::ostringstream os;
  os << "precision: " << (ok() ? "ok" : "VIOLATED") << " (" << pairs_checked
     << " pairs checked, " << refined << " refined by the exact tier";
  if (!ok()) os << ", " << violations.size() << " mismatches";
  os << ")";
  for (const auto& v : violations) os << "\n  " << v.message;
  return os.str();
}

// ---------------------------------------------------------------------------
// Part (b): parallel / permutable claims vs. the must-dependences.

namespace {

/// Loop depth shared by two statements: matching context-part prefix,
/// capped by both depths. Dependences are only enforced on the shared
/// prefix (beyond it, statement order satisfies them).
std::size_t shared_depth(const ddg::Statement& a, const ddg::Statement& b) {
  std::size_t n = std::min(a.context.parts.size(), b.context.parts.size());
  std::size_t k = 0;
  while (k < n && a.context.parts[k] == b.context.parts[k]) ++k;
  return std::min({k, a.depth, b.depth});
}

constexpr u64 kEnumCap = 4096;  ///< instance budget per piece

struct ClaimChecker {
  const fold::FoldedProgram& prog;
  ClaimReport& rep;
  std::vector<std::set<int>>& contradicted;  ///< per group: level indices
  std::set<std::tuple<int, int, int, int>> seen;  ///< (grp,lvl,dep,kind) dedup

  void witness(ClaimWitness::Kind kind, int grp, int lvl, int dep_idx,
               const fold::FoldedDep& d, const std::string& detail) {
    if (!seen.insert({grp, lvl, dep_idx, static_cast<int>(kind)}).second)
      return;
    ClaimWitness w;
    w.kind = kind;
    w.group = grp;
    w.level = lvl;
    w.src_stmt = d.src;
    w.dst_stmt = d.dst;
    std::ostringstream os;
    switch (kind) {
      case ClaimWitness::Kind::kParallelContradicted:
        os << "parallel claim contradicted";
        break;
      case ClaimWitness::Kind::kIllegalLevel:
        os << "negative dependence distance";
        break;
      case ClaimWitness::Kind::kBandViolation:
        os << "permutable band violated";
        break;
    }
    os << " at group " << grp << " level " << lvl << " by "
       << ddg::dep_kind_name(d.kind) << " s" << d.src << " -> s" << d.dst
       << ": " << detail;
    w.message = os.str();
    rep.witnesses.push_back(std::move(w));
    if (kind == ClaimWitness::Kind::kParallelContradicted)
      contradicted[static_cast<std::size_t>(grp)].insert(lvl);
  }

  /// Schedule distance of `level` for one enumerated instance.
  static i128 distance(const scheduler::Level& level, std::size_t shared,
                       std::span<const i64> t, std::span<const i128> s) {
    i128 dist = 0;
    std::size_t n = std::min(shared, level.row.size());
    for (std::size_t j = 0; j < n; ++j)
      dist += static_cast<i128>(level.row[j]) *
              (static_cast<i128>(t[j]) - s[j]);
    return dist;
  }

  /// Instance-exact walk over an enumerable piece.
  void check_enumerated(const std::vector<std::vector<i64>>& pts,
                        const poly::Piece& piece,
                        const scheduler::GroupSchedule& g, int grp,
                        std::size_t shared, int dep_idx,
                        const fold::FoldedDep& d) {
    for (const auto& t : pts) {
      ++rep.instances_checked;
      std::vector<i128> s = piece.label_fn.eval(t);
      bool satisfied = false;
      bool band_satisfied = false;
      for (std::size_t li = 0; li < g.levels.size(); ++li) {
        const scheduler::Level& lv = g.levels[li];
        if (li == 0 || lv.new_band) band_satisfied = satisfied;
        i128 dist = distance(lv, shared, t, s);
        std::ostringstream det;
        auto detail = [&]() {
          det << "distance " << static_cast<long long>(dist)
              << " at instance (";
          for (std::size_t j = 0; j < t.size(); ++j)
            det << (j ? "," : "") << t[j];
          det << ")";
          return det.str();
        };
        if (!satisfied && dist < 0)
          witness(ClaimWitness::Kind::kIllegalLevel, grp,
                  static_cast<int>(li), dep_idx, d, detail());
        else if (!band_satisfied && dist < 0)
          witness(ClaimWitness::Kind::kBandViolation, grp,
                  static_cast<int>(li), dep_idx, d, detail());
        if (lv.parallel && !satisfied && dist != 0)
          witness(ClaimWitness::Kind::kParallelContradicted, grp,
                  static_cast<int>(li), dep_idx, d, detail());
        if (dist > 0) satisfied = true;
      }
    }
  }

  /// The schedule distance of `level` as an affine form over the piece
  /// domain (source instance = label_fn image of the target instance).
  static AffineExpr distance_expr(const poly::Piece& piece,
                                  const scheduler::Level& lv,
                                  std::size_t shared) {
    std::size_t dim = piece.domain.dim();
    AffineExpr dist(dim);
    std::size_t n = std::min(shared, lv.row.size());
    for (std::size_t j = 0; j < n; ++j) {
      if (lv.row[j] == 0) continue;
      dist = dist + (AffineExpr::var(dim, j) - piece.label_fn.output(j)) *
                        lv.row[j];
    }
    return dist;
  }

  /// Exact walk for pieces too large to enumerate: at each level, the
  /// Omega core decides whether any still-unsatisfied INTEGER instance has
  /// a negative (or, for a parallel claim, nonzero) distance — the same
  /// instances the enumerated walk would have visited, so every witness is
  /// real and every pass is a theorem. Returns false as soon as a query
  /// hits the effort cap; the caller then re-walks with the rational LP
  /// bounds (the (grp,lvl,dep,kind) dedup makes the double walk safe).
  bool check_exact(const poly::Piece& piece,
                   const scheduler::GroupSchedule& g, int grp,
                   std::size_t shared, int dep_idx,
                   const fold::FoldedDep& d) {
    Polyhedron region = piece.domain;       // unsatisfied instances
    Polyhedron band_region = piece.domain;  // unsatisfied at band start
    for (std::size_t li = 0; li < g.levels.size(); ++li) {
      const scheduler::Level& lv = g.levels[li];
      AffineExpr dist = distance_expr(piece, lv, shared);
      if (li == 0 || lv.new_band) band_region = region;
      auto test = [&](const Polyhedron& base, bool negative) {
        Polyhedron q = base;
        q.add_ge0(negative ? dist * -1 + (-1) : dist + (-1));
        return poly::integer_feasible(q);
      };
      const poly::Feas neg = test(region, /*negative=*/true);
      if (neg == poly::Feas::kUnknown) return false;
      if (neg == poly::Feas::kFeasible) {
        witness(ClaimWitness::Kind::kIllegalLevel, grp, static_cast<int>(li),
                dep_idx, d, "integer instance with negative distance");
      } else {
        const poly::Feas bneg = test(band_region, /*negative=*/true);
        if (bneg == poly::Feas::kUnknown) return false;
        if (bneg == poly::Feas::kFeasible)
          witness(ClaimWitness::Kind::kBandViolation, grp,
                  static_cast<int>(li), dep_idx, d,
                  "integer in-band instance with negative distance");
      }
      if (lv.parallel) {
        const poly::Feas pos = test(region, /*negative=*/false);
        if (pos == poly::Feas::kUnknown) return false;
        if (pos == poly::Feas::kFeasible || neg == poly::Feas::kFeasible)
          witness(ClaimWitness::Kind::kParallelContradicted, grp,
                  static_cast<int>(li), dep_idx, d,
                  "integer instance with nonzero distance");
      }
      region.add_eq0(dist);
    }
    return true;
  }

  /// LP fallback: walk the levels keeping the polyhedron of
  /// still-unsatisfied instances (distance pinned to zero at every earlier
  /// level) and bound each level's distance over it. Rational bounds are
  /// conservative: a claim is only accepted when the relaxation proves the
  /// distance identically zero.
  void check_lp(const poly::Piece& piece, const scheduler::GroupSchedule& g,
                int grp, std::size_t shared, int dep_idx,
                const fold::FoldedDep& d) {
    Polyhedron region = piece.domain;       // unsatisfied instances
    Polyhedron band_region = piece.domain;  // unsatisfied at band start
    for (std::size_t li = 0; li < g.levels.size(); ++li) {
      const scheduler::Level& lv = g.levels[li];
      AffineExpr dist = distance_expr(piece, lv, shared);
      if (li == 0 || lv.new_band) band_region = region;
      auto mn = region.minimize(dist);
      if (mn.status == LpStatus::kInfeasible) break;  // all satisfied
      bool can_neg = mn.status == LpStatus::kUnbounded ||
                     (mn.status == LpStatus::kOptimal && mn.value.sign() < 0);
      if (can_neg) {
        witness(ClaimWitness::Kind::kIllegalLevel, grp, static_cast<int>(li),
                dep_idx, d, "rational minimum below zero");
      } else {
        auto bmn = band_region.minimize(dist);
        if (bmn.status == LpStatus::kUnbounded ||
            (bmn.status == LpStatus::kOptimal && bmn.value.sign() < 0))
          witness(ClaimWitness::Kind::kBandViolation, grp,
                  static_cast<int>(li), dep_idx, d,
                  "rational in-band minimum below zero");
      }
      if (lv.parallel) {
        auto mx = region.maximize(dist);
        bool nonzero =
            can_neg || mx.status == LpStatus::kUnbounded ||
            (mx.status == LpStatus::kOptimal && mx.value.sign() > 0);
        if (nonzero)
          witness(ClaimWitness::Kind::kParallelContradicted, grp,
                  static_cast<int>(li), dep_idx, d,
                  "distance not provably zero over the piece");
      }
      region.add_eq0(dist);
    }
  }

  /// A piece over the enumeration cap: decide it exactly when the Omega
  /// core can, fall back to the rational relaxation when it cannot.
  void check_capped(const poly::Piece& piece,
                    const scheduler::GroupSchedule& g, int grp,
                    std::size_t shared, int dep_idx,
                    const fold::FoldedDep& d) {
    ++rep.capped_pieces;
    if (!check_exact(piece, g, grp, shared, dep_idx, d))
      check_lp(piece, g, grp, shared, dep_idx, d);
  }
};

}  // namespace

ClaimReport check_parallel_claims(const fold::FoldedProgram& prog,
                                  feedback::RegionMetrics& m, bool downgrade,
                                  support::ThreadPool* pool) {
  auto& groups = m.sched.groups;
  std::vector<std::set<int>> contradicted(groups.size());
  // Groups re-validate independently: each task owns its own part report,
  // dedup set and contradicted[gi] slot. Parts merge in group order below,
  // so counters and witness order match the serial sweep exactly.
  std::vector<ClaimReport> parts(groups.size());

  auto check_group = [&](std::size_t gi) {
    const scheduler::GroupSchedule& g = groups[gi];
    if (!g.schedulable || g.levels.empty()) return;
    ClaimReport& part = parts[gi];
    ClaimChecker checker{prog, part, contradicted, {}};
    for (const auto& lv : g.levels)
      if (lv.parallel) ++part.parallel_levels;
    std::set<int> in_group(g.stmts.begin(), g.stmts.end());

    for (std::size_t di = 0; di < prog.deps.size(); ++di) {
      const fold::FoldedDep& d = prog.deps[di];
      if (!in_group.count(d.src) || !in_group.count(d.dst)) continue;
      std::size_t shared =
          shared_depth(prog.stmt(d.src).meta, prog.stmt(d.dst).meta);
      if (shared == 0) continue;  // no common loop: order satisfies it

      // Must-pieces only: every instance they describe provably occurred,
      // so a contradiction is a real one (over-approximate pieces would
      // manufacture false alarms).
      poly::PolySet must = d.must_relation();
      for (const poly::Piece& piece : must.pieces()) {
        if (piece.domain.dim() < shared ||
            piece.label_fn.out_dim() < shared)
          continue;  // malformed piece: nothing checkable
        auto pts = piece.domain.enumerate(kEnumCap);
        if (pts)
          checker.check_enumerated(*pts, piece, g, static_cast<int>(gi),
                                   shared, static_cast<int>(di), d);
        else
          checker.check_capped(piece, g, static_cast<int>(gi), shared,
                               static_cast<int>(di), d);
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(groups.size(), check_group);
  } else {
    for (std::size_t gi = 0; gi < groups.size(); ++gi) check_group(gi);
  }

  ClaimReport rep;
  for (ClaimReport& part : parts) {
    rep.parallel_levels += part.parallel_levels;
    rep.instances_checked += part.instances_checked;
    rep.capped_pieces += part.capped_pieces;
    for (ClaimWitness& w : part.witnesses)
      rep.witnesses.push_back(std::move(w));
  }

  if (downgrade) {
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      for (int li : contradicted[gi]) {
        scheduler::Level& lv = groups[gi].levels[static_cast<std::size_t>(li)];
        if (lv.parallel) {
          lv.parallel = false;
          ++rep.downgraded_levels;
        }
      }
    }
    if (rep.downgraded_levels > 0) feedback::refresh_schedule_metrics(m);
  }
  return rep;
}

std::string ClaimReport::str() const {
  std::ostringstream os;
  os << "claims: " << (ok() ? "ok" : "CONTRADICTED") << " ("
     << parallel_levels << " parallel levels, " << instances_checked
     << " instances";
  if (capped_pieces > 0) os << ", " << capped_pieces << " capped pieces";
  if (downgraded_levels > 0) os << ", " << downgraded_levels << " downgraded";
  os << ")";
  for (const auto& w : witnesses) os << "\n  " << w.message;
  return os.str();
}

// ---------------------------------------------------------------------------

bool OracleReport::ok() const {
  if (!coverage.ok() || !precision.ok()) return false;
  for (const auto& c : claims)
    if (!c.ok()) return false;
  return true;
}

std::string OracleReport::verdict_line() const {
  u64 instances = 0, parallel = 0, contradictions = 0;
  int downgraded = 0;
  for (const auto& c : claims) {
    instances += c.instances_checked;
    parallel += c.parallel_levels;
    contradictions += c.witnesses.size();
    downgraded += c.downgraded_levels;
  }
  std::ostringstream os;
  os << "soundness oracle: " << (ok() ? "OK" : "VIOLATED") << " -- "
     << coverage.checked << " dynamic edges vs static may-deps ("
     << coverage.violations.size() << " uncovered, " << coverage.skipped
     << " skipped), " << parallel << " parallel claims over " << instances
     << " instances (" << contradictions << " contradictions";
  if (downgraded > 0) os << ", " << downgraded << " downgraded";
  os << "), exact precision " << (precision.ok() ? "ok" : "VIOLATED") << " ("
     << precision.pairs_checked << " pairs, " << precision.refined
     << " refined)";
  return os.str();
}

OracleReport run_oracle(const ir::Module& m, const fold::FoldedProgram& prog,
                        const std::vector<feedback::RegionMetrics*>& regions,
                        bool downgrade, support::ThreadPool* pool,
                        obs::Session* obs, support::CancelToken* cancel) {
  obs::Span oracle_span(obs, "oracle:run");
  OracleReport r;
  if (cancel != nullptr && cancel->poll()) return r;
  r.coverage = check_dynamic_coverage(m, prog, pool);
  r.precision = check_precision_tier(m, pool);
  // Each region's claim check touches only that region's metrics, so the
  // checks fan out; reports land in pre-indexed slots preserving the
  // serial (filtered) region order.
  std::vector<std::size_t> picked;
  for (std::size_t i = 0; i < regions.size(); ++i)
    if (regions[i] != nullptr && regions[i]->analyzable) picked.push_back(i);
  r.claims.resize(picked.size());
  auto check_region = [&](std::size_t k) {
    // Cancelled mid-oracle: leave this region's ClaimReport empty rather
    // than half-examined (cancelled() only — tasks never fire the token).
    if (cancel != nullptr && cancel->cancelled()) return;
    r.claims[k] =
        check_parallel_claims(prog, *regions[picked[k]], downgrade, pool);
  };
  if (pool != nullptr) {
    pool->parallel_for(picked.size(), check_region);
  } else {
    for (std::size_t k = 0; k < picked.size(); ++k) check_region(k);
  }
  if (obs != nullptr && obs->enabled()) {
    obs->add("oracle.regions_checked", static_cast<i64>(picked.size()));
    i64 claims = 0, capped = 0;
    for (const auto& c : r.claims) {
      claims += static_cast<i64>(c.parallel_levels);
      capped += static_cast<i64>(c.capped_pieces);
    }
    obs->add("oracle.parallel_levels_checked", claims);
    obs->add("verify.cap_hits", capped);
  }
  return r;
}

}  // namespace pp::verify
