// Layer 1 of pp::verify: the module verifier. Checks the structural
// invariants every downstream stage assumes (blocks end in exactly one
// terminator, branch targets / registers / call sites in range), then —
// structure permitting — the dominance-based def-before-use property via
// the must-defined dataflow, and 8-byte alignment of every load/store whose
// address statican can model as an affine function.
//
// Unlike ir::verify (throw on first problem), this verifier never throws:
// it collects typed issues so the pipeline can reject an ill-formed module
// with a structured diagnostic, and so the mutation tests can assert the
// exact defect class detected.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "support/budget.hpp"

namespace pp::verify {

enum class IssueCode : std::uint8_t {
  kNoBlocks,           ///< function has no basic blocks
  kBlockIdMismatch,    ///< block ids not 0..n-1 in order
  kEmptyBlock,         ///< block with no instructions
  kMissingTerminator,  ///< block does not end in a terminator
  kMidBlockTerminator, ///< terminator before the last instruction
  kBadBranchTarget,    ///< kBr/kBrCond target out of range
  kBadRegister,        ///< operand or destination register out of range
  kBadCallTarget,      ///< kCall to a nonexistent function
  kBadCallArity,       ///< kCall argument count != callee parameters
  kUseBeforeDef,       ///< register read without a definition on some path
  kMisalignedAccess,   ///< provably misaligned affine memory address
};
const char* issue_code_name(IssueCode c);

struct Issue {
  IssueCode code{};
  support::Severity severity = support::Severity::kError;
  int func = -1;
  int block = -1;
  int instr = -1;
  std::string message;  ///< self-contained human-readable description

  /// "[error] use-before-def: main b0 i0: r7 read but never defined"
  std::string str() const;
};

struct VerifyOptions {
  bool check_alignment = true;  ///< statican-backed alignment pass
  std::size_t max_issues = 256; ///< stop collecting past this many
};

struct VerifyReport {
  std::vector<Issue> issues;

  /// No error-severity issues (info/warn do not reject a module).
  bool ok() const;
  bool has(IssueCode c) const;
  std::size_t count(IssueCode c) const;
  /// One line per issue, insertion order.
  std::string str() const;
  /// Mirror every issue into a DiagnosticLog under Stage::kVerify.
  void to_log(support::DiagnosticLog& log) const;
};

/// Verify the whole module. Never throws; never executes anything.
VerifyReport verify_module(const ir::Module& m, const VerifyOptions& opts = {});

}  // namespace pp::verify
