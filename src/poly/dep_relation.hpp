// Dependence relations in the folded form polyprof produces: for a
// dependence edge src -> dst, the folding stage emits a polyhedron over the
// *destination* iteration vector together with an affine map giving the
// matching *source* iteration vector (paper Tables 1-2: e.g.
// "0<=cj<=15 and 1<=ck<=42 : cj' = cj, ck' = ck - 1").
#pragma once

#include <string>
#include <vector>

#include "poly/affine.hpp"
#include "poly/polyhedron.hpp"

namespace pp::poly {

/// One folded dependence piece between two statements.
struct DepPiece {
  Polyhedron dst_domain;  ///< over dst iteration space (dim = dst depth)
  AffineMap src_fn;       ///< dst IV -> src IV (out_dim = src depth)
  bool exact = true;
  u64 observed = 0;       ///< dynamic dependence instances folded in
};

/// A folded dependence edge: union of pieces, plus identity of endpoints
/// (statement ids are assigned by the DDG layer).
struct DepRelation {
  int src_stmt = -1;
  int dst_stmt = -1;
  std::vector<DepPiece> pieces;

  bool all_exact() const {
    for (const auto& p : pieces)
      if (!p.exact) return false;
    return true;
  }
  u64 total_observed() const {
    u64 n = 0;
    for (const auto& p : pieces) n += p.observed;
    return n;
  }
};

}  // namespace pp::poly
