#include "poly/simplex.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace pp::poly {

namespace {

// Dense simplex tableau in standard equality form
//   M y = d,  y >= 0,  minimize obj·y
// with rows indexed by basic variables. The tableau stores, per row,
// the coefficients of all structural columns plus the rhs.
class Tableau {
 public:
  Tableau(std::size_t num_cols) : num_cols_(num_cols) {}

  void add_row(RatVec coeffs, Rat rhs) {
    PP_CHECK(coeffs.size() == num_cols_, "tableau row width mismatch");
    if (rhs < Rat(0)) {  // keep rhs non-negative for phase 1
      for (auto& c : coeffs) c = -c;
      rhs = -rhs;
    }
    rows_.push_back(std::move(coeffs));
    rhs_.push_back(rhs);
  }

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return num_cols_; }

  // Extend every row with `extra` zero columns; returns index of the first
  // new column.
  std::size_t add_cols(std::size_t extra) {
    std::size_t first = num_cols_;
    num_cols_ += extra;
    for (auto& r : rows_) r.resize(num_cols_, Rat(0));
    return first;
  }

  Rat& at(std::size_t r, std::size_t c) { return rows_[r][c]; }
  Rat& rhs(std::size_t r) { return rhs_[r]; }

  // Run simplex on the given objective (over all current columns) starting
  // from the basis in `basis` (basis[r] = column basic in row r). Only
  // columns < max_enter_col may enter the basis (used to lock phase-1
  // artificials out of phase 2). Returns false when unbounded; `optimum`
  // receives the minimal objective value.
  bool minimize(RatVec obj, Rat obj_const, std::vector<std::size_t>& basis,
                Rat* optimum, std::size_t max_enter_col) {
    PP_CHECK(obj.size() == num_cols_, "objective width mismatch");
    // Price out the basic variables: reduced costs must be zero on basis.
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      Rat f = obj[basis[r]];
      if (f.is_zero()) continue;
      // Keep the invariant orig(y) == obj·y + obj_const on the feasible set:
      // subtracting f×(row equation) requires adding f×rhs to the constant.
      for (std::size_t c = 0; c < num_cols_; ++c) obj[c] -= f * rows_[r][c];
      obj_const += f * rhs_[r];
    }
    for (;;) {
      // Bland's rule: entering column = lowest index with negative reduced
      // cost.
      std::size_t enter = num_cols_;
      for (std::size_t c = 0; c < max_enter_col; ++c) {
        if (obj[c] < Rat(0)) {
          enter = c;
          break;
        }
      }
      if (enter == num_cols_) {
        // Optimal. Invariant: orig(y) == obj·y + obj_const on the feasible
        // set, and after pricing the basic columns have zero reduced cost,
        // so at the current basic solution orig == obj_const.
        if (optimum) *optimum = obj_const;
        return true;
      }
      // Ratio test, Bland tie-break on leaving variable.
      std::size_t leave = rows_.size();
      Rat best;
      for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (rows_[r][enter] > Rat(0)) {
          Rat ratio = rhs_[r] / rows_[r][enter];
          if (leave == rows_.size() || ratio < best ||
              (ratio == best && basis[r] < basis[leave])) {
            leave = r;
            best = ratio;
          }
        }
      }
      if (leave == rows_.size()) return false;  // unbounded
      pivot(leave, enter, obj, obj_const, basis);
    }
  }

  const std::vector<RatVec>& rows() const { return rows_; }
  const RatVec& rhs_vec() const { return rhs_; }

 private:
  void pivot(std::size_t pr, std::size_t pc, RatVec& obj, Rat& obj_const,
             std::vector<std::size_t>& basis) {
    Rat inv = Rat(1) / rows_[pr][pc];
    for (std::size_t c = 0; c < num_cols_; ++c) rows_[pr][c] *= inv;
    rhs_[pr] *= inv;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r == pr || rows_[r][pc].is_zero()) continue;
      Rat f = rows_[r][pc];
      for (std::size_t c = 0; c < num_cols_; ++c)
        rows_[r][c] -= f * rows_[pr][c];
      rhs_[r] -= f * rhs_[pr];
    }
    if (!obj[pc].is_zero()) {
      Rat f = obj[pc];
      for (std::size_t c = 0; c < num_cols_; ++c) obj[c] -= f * rows_[pr][c];
      obj_const += f * rhs_[pr];
    }
    basis[pr] = pc;
  }

  std::size_t num_cols_;
  std::vector<RatVec> rows_;
  RatVec rhs_;
};

}  // namespace

LpResult lp_minimize(std::size_t n,
                     const std::vector<LpConstraint>& constraints,
                     const RatVec& objective) {
  PP_CHECK(objective.size() == n, "objective size mismatch");
  // Columns: x⁺ (n), x⁻ (n), one surplus per inequality, one artificial per
  // row. Count inequalities first.
  std::size_t num_ineq = 0;
  for (const auto& c : constraints) {
    PP_CHECK(c.coeffs.size() == n, "constraint size mismatch");
    if (!c.equality) ++num_ineq;
  }
  std::size_t m = constraints.size();
  std::size_t cols_struct = 2 * n + num_ineq;
  Tableau tab(cols_struct);

  // Build rows: a·x - s = b for inequalities (s >= 0), a·x = b for
  // equalities. add_row flips signs when b < 0 so artificials stay valid.
  std::size_t surplus_idx = 2 * n;
  for (const auto& c : constraints) {
    RatVec row(cols_struct, Rat(0));
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = c.coeffs[j];
      row[n + j] = -c.coeffs[j];
    }
    if (!c.equality) row[surplus_idx++] = Rat(-1);
    tab.add_row(std::move(row), c.rhs);
  }

  // Phase 1: artificial basis, minimize sum of artificials.
  std::size_t art0 = tab.add_cols(m);
  std::vector<std::size_t> basis(m);
  for (std::size_t r = 0; r < m; ++r) {
    tab.at(r, art0 + r) = Rat(1);
    basis[r] = art0 + r;
  }
  RatVec phase1_obj(tab.num_cols(), Rat(0));
  for (std::size_t r = 0; r < m; ++r) phase1_obj[art0 + r] = Rat(1);
  Rat opt;
  bool ok = tab.minimize(phase1_obj, Rat(0), basis, &opt, tab.num_cols());
  PP_CHECK(ok, "phase-1 simplex cannot be unbounded");
  LpResult res;
  if (opt > Rat(0)) {
    res.status = LpStatus::kInfeasible;
    return res;
  }
  // Drive any artificial still basic out of the basis (degenerate rows).
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < art0) continue;
    // Find a structural column with nonzero coefficient to pivot in.
    std::size_t pc = cols_struct;
    for (std::size_t c = 0; c < cols_struct; ++c) {
      if (!tab.at(r, c).is_zero()) {
        pc = c;
        break;
      }
    }
    if (pc == cols_struct) continue;  // redundant row; harmless to keep
    // Manual pivot (no objective row to maintain here).
    Rat inv = Rat(1) / tab.at(r, pc);
    for (std::size_t c = 0; c < tab.num_cols(); ++c) tab.at(r, c) *= inv;
    tab.rhs(r) *= inv;
    for (std::size_t rr = 0; rr < m; ++rr) {
      if (rr == r || tab.at(rr, pc).is_zero()) continue;
      Rat f = tab.at(rr, pc);
      for (std::size_t c = 0; c < tab.num_cols(); ++c)
        tab.at(rr, c) -= f * tab.at(r, c);
      tab.rhs(rr) -= f * tab.rhs(r);
    }
    basis[r] = pc;
  }

  // Phase 2: original objective over structural columns. Artificials are
  // locked out of the basis (max_enter_col = art0); any artificial still
  // basic sits at value 0 in a redundant all-zero row, so it cannot affect
  // the optimum.
  RatVec phase2_obj(tab.num_cols(), Rat(0));
  for (std::size_t j = 0; j < n; ++j) {
    phase2_obj[j] = objective[j];
    phase2_obj[n + j] = -objective[j];
  }

  if (!tab.minimize(phase2_obj, Rat(0), basis, &opt, art0)) {
    res.status = LpStatus::kUnbounded;
    return res;
  }
  res.status = LpStatus::kOptimal;
  res.objective = opt;
  // Recover x = x⁺ - x⁻ from the basic solution.
  RatVec y(tab.num_cols(), Rat(0));
  for (std::size_t r = 0; r < m; ++r) y[basis[r]] = tab.rhs_vec()[r];
  res.point.assign(n, Rat(0));
  for (std::size_t j = 0; j < n; ++j) res.point[j] = y[j] - y[n + j];
  return res;
}

LpResult lp_maximize(std::size_t n,
                     const std::vector<LpConstraint>& constraints,
                     const RatVec& objective) {
  RatVec neg(objective.size());
  for (std::size_t i = 0; i < objective.size(); ++i) neg[i] = -objective[i];
  LpResult r = lp_minimize(n, constraints, neg);
  if (r.status == LpStatus::kOptimal) r.objective = -r.objective;
  return r;
}

}  // namespace pp::poly
