#include "poly/omega.hpp"

#include <algorithm>

#include "support/int_math.hpp"

namespace pp::poly {

const char* feas_name(Feas f) {
  switch (f) {
    case Feas::kInfeasible: return "infeasible";
    case Feas::kFeasible: return "feasible";
    case Feas::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

// Coefficient magnitudes are capped well below the i128 range so that any
// product of two in-cap values (plus a few additions) cannot overflow.
constexpr i128 kMagCap = i128{1} << 100;

struct Row {
  std::vector<i128> c;  ///< one coefficient per variable (dead vars stay 0)
  i128 k = 0;           ///< constant term
  bool eq = false;      ///< expr == 0 (else expr >= 0)
};

struct System {
  std::vector<Row> rows;
  std::size_t dim = 0;
};

enum class Norm : std::uint8_t { kOk, kInfeasible, kOverflow };

/// Symmetric residue of `a` modulo `m` in (-m/2, m/2]; m >= 2.
i128 mod_hat(i128 a, i128 m) {
  i128 r = a - floor_div(a, m) * m;  // in [0, m)
  if (2 * r > m) r -= m;
  return r;
}

/// Canonicalize every row: divide by the coefficient gcd (tightening
/// inequalities to the integer hull along their normal), refute equalities
/// the gcd test kills, and drop rows that became trivially true.
Norm normalize(System& sys) {
  std::vector<Row> kept;
  kept.reserve(sys.rows.size());
  for (Row& r : sys.rows) {
    i128 g = 0;
    for (i128 c : r.c) g = gcd(g, c);
    if (g == 0) {
      // Constant row: decide it right here.
      if (r.eq ? r.k != 0 : r.k < 0) return Norm::kInfeasible;
      continue;
    }
    if (g > 1) {
      if (r.eq) {
        if (r.k % g != 0) return Norm::kInfeasible;  // gcd refutation
        r.k /= g;
      } else {
        r.k = floor_div(r.k, g);  // exact integer tightening
      }
      for (i128& c : r.c) c /= g;
    }
    if (r.k >= kMagCap || r.k <= -kMagCap) return Norm::kOverflow;
    for (i128 c : r.c)
      if (c >= kMagCap || c <= -kMagCap) return Norm::kOverflow;
    kept.push_back(std::move(r));
  }
  sys.rows = std::move(kept);
  return Norm::kOk;
}

struct Solver {
  u64 steps_left;

  bool spend(u64 n = 1) {
    if (steps_left < n) {
      steps_left = 0;
      return false;
    }
    steps_left -= n;
    return true;
  }

  /// Substitute variable `k` using the unit-coefficient equality `e`
  /// (|e.c[k]| == 1) into every other row, then drop `e`. Exact.
  static void substitute(System& sys, std::size_t ei, std::size_t k) {
    Row e = std::move(sys.rows[ei]);
    sys.rows.erase(sys.rows.begin() + static_cast<std::ptrdiff_t>(ei));
    // From e:  s*x_k + rest + k0 = 0  with s = +-1  =>  x_k = -s*(rest + k0).
    const i128 s = e.c[k];
    for (Row& r : sys.rows) {
      const i128 a = r.c[k];
      if (a == 0) continue;
      r.c[k] = 0;
      for (std::size_t j = 0; j < sys.dim; ++j) {
        if (j == k) continue;
        r.c[j] -= a * s * e.c[j];
      }
      r.k -= a * s * e.k;
    }
  }

  Feas solve(System sys) {
    for (;;) {
      if (!spend()) return Feas::kUnknown;
      switch (normalize(sys)) {
        case Norm::kInfeasible: return Feas::kInfeasible;
        case Norm::kOverflow: return Feas::kUnknown;
        case Norm::kOk: break;
      }

      // --- equality elimination ---
      // Prefer any equality with a unit coefficient (exact substitution);
      // the fresh row a mod-reduction appends is exactly such an equality,
      // so scanning ALL rows here is what makes the reduction terminate.
      std::size_t ei = sys.rows.size();
      std::size_t unit = sys.dim;
      std::size_t small_row = sys.rows.size();
      std::size_t small = sys.dim;
      i128 small_abs = 0;
      for (std::size_t i = 0; i < sys.rows.size() && unit == sys.dim; ++i) {
        if (!sys.rows[i].eq) continue;
        if (ei == sys.rows.size()) ei = i;
        for (std::size_t j = 0; j < sys.dim; ++j) {
          i128 a = sys.rows[i].c[j] < 0 ? -sys.rows[i].c[j] : sys.rows[i].c[j];
          if (a == 0) continue;
          if (a == 1) {
            ei = i;
            unit = j;
            break;
          }
          if (small == sys.dim || a < small_abs) {
            small_row = i;
            small = j;
            small_abs = a;
          }
        }
      }
      if (ei < sys.rows.size()) {
        if (unit < sys.dim) {
          substitute(sys, ei, unit);
          continue;
        }
        const Row& e = sys.rows[small_row];
        // No unit coefficient: Pugh's symmetric-mod reduction. Let
        // m = |a_small| + 1 and introduce sigma defined by
        //   sum_j mod_hat(a_j, m) x_j - m*sigma + mod_hat(k, m) = 0.
        // mod_hat(t, m) == t (mod m), so whenever the original equality
        // holds the left side is divisible by m and an integer sigma
        // exists; conversely sigma is unconstrained elsewhere. The new
        // equality carries coefficient -sign(a_small) at x_small — a unit
        // — so the substitution path fires next and strictly shrinks the
        // original equality's coefficients.
        const i128 m = small_abs + 1;
        Row fresh;
        fresh.eq = true;
        fresh.c.assign(sys.dim + 1, 0);
        for (std::size_t j = 0; j < sys.dim; ++j)
          fresh.c[j] = mod_hat(e.c[j], m);
        fresh.c[sys.dim] = -m;
        fresh.k = mod_hat(e.k, m);
        for (Row& r : sys.rows) r.c.push_back(0);
        ++sys.dim;
        sys.rows.push_back(std::move(fresh));
        continue;
      }

      // --- pick an elimination variable (fewest lower*upper combos) ---
      std::size_t pick = sys.dim;
      std::size_t pick_cost = 0;
      for (std::size_t j = 0; j < sys.dim; ++j) {
        std::size_t lo = 0, hi = 0;
        for (const Row& r : sys.rows) {
          if (r.c[j] > 0) ++lo;
          if (r.c[j] < 0) ++hi;
        }
        if (lo + hi == 0) continue;
        if (lo == 0 || hi == 0) {
          // One-sided variable: every row mentioning it is satisfiable by
          // pushing it far enough — drop those rows and restart.
          pick = j;
          pick_cost = 0;
          break;
        }
        const std::size_t cost = lo * hi;
        if (pick == sys.dim || cost < pick_cost) {
          pick = j;
          pick_cost = cost;
        }
      }
      if (pick == sys.dim) return Feas::kFeasible;  // only satisfied rows left

      std::vector<Row> lowers, uppers, rest;
      for (Row& r : sys.rows) {
        if (r.c[pick] > 0)
          lowers.push_back(std::move(r));
        else if (r.c[pick] < 0)
          uppers.push_back(std::move(r));
        else
          rest.push_back(std::move(r));
      }
      if (lowers.empty() || uppers.empty()) {
        sys.rows = std::move(rest);
        continue;
      }

      i128 max_a = 0, max_b = 0;
      for (const Row& l : lowers) max_a = std::max(max_a, l.c[pick]);
      for (const Row& u : uppers) max_b = std::max(max_b, -u.c[pick]);
      const bool exact = max_a == 1 || max_b == 1;

      // combine(tighten=false): real shadow; tighten=true: dark shadow,
      // whose combined rows subtract (a-1)(b-1) — any rational point of the
      // dark shadow lifts to an integer x_pick.
      auto combine = [&](bool tighten) {
        System out;
        out.dim = sys.dim;
        out.rows = rest;  // copy: both shadows share the untouched rows
        for (const Row& l : lowers) {
          for (const Row& u : uppers) {
            const i128 a = l.c[pick];
            const i128 b = -u.c[pick];
            Row r;
            r.eq = false;
            r.c.assign(sys.dim, 0);
            for (std::size_t j = 0; j < sys.dim; ++j)
              r.c[j] = b * l.c[j] + a * u.c[j];
            r.k = b * l.k + a * u.k;
            if (tighten) r.k -= (a - 1) * (b - 1);
            out.rows.push_back(std::move(r));
          }
        }
        return out;
      };
      if (!spend(lowers.size() * uppers.size())) return Feas::kUnknown;

      if (exact) {
        sys = combine(false);
        continue;
      }

      // Inexact elimination: fork. Dark feasible => feasible; real
      // infeasible => infeasible; otherwise only the splinter hyperplanes
      // can hold an integer point (Pugh's bound).
      const Feas dark = solve(combine(true));
      if (dark == Feas::kFeasible) return Feas::kFeasible;
      const Feas real = solve(combine(false));
      if (real == Feas::kInfeasible) return Feas::kInfeasible;

      bool unknown = dark == Feas::kUnknown || real == Feas::kUnknown;
      for (const Row& l : lowers) {
        const i128 a = l.c[pick];
        const i128 imax = floor_div(a * max_b - a - max_b, max_b);
        for (i128 i = 0; i <= imax; ++i) {
          if (!spend()) return Feas::kUnknown;
          System sp;
          sp.dim = sys.dim;
          sp.rows = rest;
          for (const Row& r : lowers) sp.rows.push_back(r);
          for (const Row& r : uppers) sp.rows.push_back(r);
          Row plane = l;  // a*x_pick + rest_l - i == 0
          plane.eq = true;
          plane.k -= i;
          sp.rows.push_back(std::move(plane));
          const Feas fs = solve(std::move(sp));
          if (fs == Feas::kFeasible) return Feas::kFeasible;
          if (fs == Feas::kUnknown) unknown = true;
        }
      }
      return unknown ? Feas::kUnknown : Feas::kInfeasible;
    }
  }
};

}  // namespace

Feas integer_feasible(const Polyhedron& p, const OmegaOptions& opts) {
  System sys;
  sys.dim = p.dim();
  sys.rows.reserve(p.num_constraints());
  for (const Constraint& c : p.constraints()) {
    Row r;
    r.eq = c.equality;
    r.k = c.expr.const_term();
    r.c.resize(sys.dim);
    for (std::size_t j = 0; j < sys.dim; ++j) r.c[j] = c.expr.coeff(j);
    sys.rows.push_back(std::move(r));
  }
  Solver solver{opts.max_steps};
  return solver.solve(std::move(sys));
}

}  // namespace pp::poly
