// Rational polyhedra over integer points. A Polyhedron is a conjunction of
// affine constraints over a fixed-dimension space; polyprof's folding stage
// produces bounded polyhedra describing iteration domains, and the
// scheduler asks LP questions about (products of) them.
//
// Integer questions (membership, point counting/enumeration) are exact for
// bounded polyhedra via LP-guided recursive enumeration; rational
// questions (emptiness, min/max of an affine form) use the exact simplex.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "poly/affine.hpp"
#include "poly/simplex.hpp"

namespace pp::poly {

/// Result of optimizing an affine form over a polyhedron.
struct BoundResult {
  LpStatus status = LpStatus::kInfeasible;
  Rat value;  ///< valid when status == kOptimal
};

class Polyhedron {
 public:
  Polyhedron() = default;
  explicit Polyhedron(std::size_t dim) : dim_(dim) {}

  /// The unconstrained space Z^dim.
  static Polyhedron universe(std::size_t dim) { return Polyhedron(dim); }

  /// Axis-aligned box {x : lo_i <= x_i <= hi_i}.
  static Polyhedron box(const std::vector<std::pair<i64, i64>>& bounds);

  std::size_t dim() const { return dim_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  std::size_t num_constraints() const { return constraints_.size(); }

  void add(Constraint c);
  /// expr >= 0
  void add_ge0(AffineExpr e) { add(Constraint::ge0(std::move(e))); }
  /// expr == 0
  void add_eq0(AffineExpr e) { add(Constraint::eq0(std::move(e))); }
  /// lo <= x_i <= hi
  void bound_var(std::size_t i, i64 lo, i64 hi);

  bool contains(std::span<const i64> point) const;

  /// Rational emptiness (sound for integer emptiness one way: rationally
  /// empty => integer empty).
  bool is_rational_empty() const;

  /// Exact integer emptiness for bounded polyhedra: falls back to lattice
  /// enumeration when a rational point exists but may not be integral.
  bool is_integer_empty(u64 enumeration_cap = 1u << 20) const;

  /// Minimize / maximize an affine form over the rational relaxation.
  BoundResult minimize(const AffineExpr& objective) const;
  BoundResult maximize(const AffineExpr& objective) const;

  /// Integer bounds of variable i: [ceil(rational min), floor(rational
  /// max)]; nullopt when the polyhedron is empty or the variable unbounded.
  std::optional<std::pair<i128, i128>> var_bounds(std::size_t i) const;

  /// Lexicographically smallest integer point (dimension 0 most
  /// significant); nullopt when integer-empty or unbounded towards
  /// lexicographic minus infinity.
  std::optional<std::vector<i64>> lexmin() const;

  /// All integer points, in lexicographic order; nullopt when unbounded or
  /// more than `cap` points.
  std::optional<std::vector<std::vector<i64>>> enumerate(
      u64 cap = 1u << 20) const;

  /// Number of integer points; nullopt when unbounded or above `cap`.
  std::optional<u64> count_points(u64 cap = 1u << 20) const;

  /// Conjunction of both constraint systems (dimensions must match).
  Polyhedron intersect(const Polyhedron& other) const;

  /// Remove constraints implied by the others (rational redundancy test).
  void remove_redundant();

  /// Rational Fourier–Motzkin elimination of variable `i`; the result is a
  /// (possibly over-approximate, w.r.t. the integer shadow) projection.
  Polyhedron project_out(std::size_t i) const;

  std::string str(std::span<const std::string> names = {}) const;

 private:
  std::vector<LpConstraint> lp_constraints() const;
  void enumerate_rec(std::vector<i64>& prefix, u64 cap, u64& count,
                     std::vector<std::vector<i64>>* out, bool& overflow) const;

  std::size_t dim_ = 0;
  std::vector<Constraint> constraints_;
};

}  // namespace pp::poly
