#include "poly/affine.hpp"

#include <sstream>

namespace pp::poly {

namespace {

/// |v| printed via unsigned arithmetic: negating INT64_MIN as i64 is UB,
/// but its magnitude is exactly representable in u64.
std::string magnitude_str(i64 v) {
  u64 m = v < 0 ? ~static_cast<u64>(v) + 1 : static_cast<u64>(v);
  return std::to_string(m);
}

}  // namespace

i128 AffineExpr::eval(std::span<const i64> point) const {
  PP_CHECK(point.size() == coeffs_.size(), "affine eval: dimension mismatch");
  i128 acc = constant_;
  for (std::size_t i = 0; i < coeffs_.size(); ++i)
    acc = add_checked(acc, mul_checked(coeffs_[i], point[i]));
  return acc;
}

AffineExpr AffineExpr::operator+(const AffineExpr& o) const {
  PP_CHECK(dim() == o.dim(), "affine add: dimension mismatch");
  AffineExpr r = *this;
  for (std::size_t i = 0; i < coeffs_.size(); ++i) r.coeffs_[i] += o.coeffs_[i];
  r.constant_ += o.constant_;
  return r;
}

AffineExpr AffineExpr::operator-(const AffineExpr& o) const {
  return *this + (o * -1);
}

AffineExpr AffineExpr::operator*(i64 s) const {
  AffineExpr r = *this;
  for (auto& c : r.coeffs_) c *= s;
  r.constant_ *= s;
  return r;
}

AffineExpr AffineExpr::operator+(i64 k) const {
  AffineExpr r = *this;
  r.constant_ += k;
  return r;
}

RatVec AffineExpr::as_rat_vec(bool with_const) const {
  RatVec v;
  v.reserve(coeffs_.size() + (with_const ? 1 : 0));
  for (i64 c : coeffs_) v.push_back(Rat(c));
  if (with_const) v.push_back(Rat(constant_));
  return v;
}

std::string AffineExpr::str(std::span<const std::string> names) const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    i64 c = coeffs_[i];
    if (c == 0) continue;
    std::string name =
        i < names.size() ? names[i] : "x" + std::to_string(i);
    if (first) {
      if (c == -1)
        os << "-";
      else if (c != 1)
        os << c << "*";
    } else {
      os << (c > 0 ? " + " : " - ");
      if (c != 1 && c != -1) os << magnitude_str(c) << "*";
    }
    os << name;
    first = false;
  }
  if (first) {
    os << constant_;
  } else if (constant_ != 0) {
    os << (constant_ > 0 ? " + " : " - ") << magnitude_str(constant_);
  }
  return os.str();
}

AffineMap AffineMap::identity(std::size_t n) {
  std::vector<AffineExpr> outs;
  outs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) outs.push_back(AffineExpr::var(n, i));
  return AffineMap(n, std::move(outs));
}

std::vector<i128> AffineMap::eval(std::span<const i64> point) const {
  std::vector<i128> out;
  out.reserve(outputs_.size());
  for (const auto& e : outputs_) out.push_back(e.eval(point));
  return out;
}

std::string AffineMap::str(std::span<const std::string> in_names) const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    if (i) os << ", ";
    os << outputs_[i].str(in_names);
  }
  os << ")";
  return os.str();
}

}  // namespace pp::poly
