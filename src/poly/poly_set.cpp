#include "poly/poly_set.hpp"

#include <sstream>

namespace pp::poly {

std::string PolySet::str(std::span<const std::string> names) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    if (i) os << " u ";
    os << pieces_[i].domain.str(names);
    if (pieces_[i].label_fn.out_dim() > 0)
      os << " -> " << pieces_[i].label_fn.str(names);
    if (!pieces_[i].exact) os << " (approx)";
  }
  if (pieces_.empty()) os << "{}";
  return os.str();
}

}  // namespace pp::poly
