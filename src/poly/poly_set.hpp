// Unions of polyhedra with per-piece exactness accounting — the output
// shape of the folding stage ("a union of polyhedra that represent the set
// of all iteration vectors", paper §5), where some pieces may be
// over-approximations of the true (hole-y) integer set.
#pragma once

#include <string>
#include <vector>

#include "poly/affine.hpp"
#include "poly/polyhedron.hpp"

namespace pp::poly {

/// One piece of a folded set: a polyhedral domain plus the affine function
/// giving the piece's labels (paper §5 "for each polyhedron P, an affine
/// function A such that for all I in P, A(I) = a(I)").
struct Piece {
  Polyhedron domain;
  AffineMap label_fn;      ///< affine reconstruction of the label vector
  bool exact = true;       ///< false when the domain over-approximates the
                           ///< observed points or the labels are not affine
  bool label_exact = true; ///< the labels ARE an integer affine function
                           ///< (the domain may still over-approximate);
                           ///< such pieces remain usable conservatively
  u64 observed_points = 0; ///< distinct iteration vectors folded in
};

/// A union of pieces over a common space.
class PolySet {
 public:
  PolySet() = default;
  explicit PolySet(std::size_t dim) : dim_(dim) {}

  std::size_t dim() const { return dim_; }
  const std::vector<Piece>& pieces() const { return pieces_; }
  std::vector<Piece>& pieces() { return pieces_; }
  bool empty() const { return pieces_.empty(); }

  void add_piece(Piece p) {
    PP_CHECK(p.domain.dim() == dim_, "piece dimension mismatch");
    pieces_.push_back(std::move(p));
  }

  /// True when every piece folded exactly.
  bool all_exact() const {
    for (const auto& p : pieces_)
      if (!p.exact) return false;
    return true;
  }

  /// Total observed dynamic points across pieces.
  u64 total_observed() const {
    u64 n = 0;
    for (const auto& p : pieces_) n += p.observed_points;
    return n;
  }

  bool contains(std::span<const i64> point) const {
    for (const auto& p : pieces_)
      if (p.domain.contains(point)) return true;
    return false;
  }

  std::string str(std::span<const std::string> names = {}) const;

 private:
  std::size_t dim_ = 0;
  std::vector<Piece> pieces_;
};

}  // namespace pp::poly
