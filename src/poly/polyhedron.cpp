#include "poly/polyhedron.hpp"

#include <sstream>

namespace pp::poly {

Polyhedron Polyhedron::box(const std::vector<std::pair<i64, i64>>& bounds) {
  Polyhedron p(bounds.size());
  for (std::size_t i = 0; i < bounds.size(); ++i)
    p.bound_var(i, bounds[i].first, bounds[i].second);
  return p;
}

void Polyhedron::add(Constraint c) {
  PP_CHECK(c.expr.dim() == dim_, "constraint dimension mismatch");
  constraints_.push_back(std::move(c));
}

void Polyhedron::bound_var(std::size_t i, i64 lo, i64 hi) {
  add_ge0(AffineExpr::var(dim_, i) - lo);           // x_i - lo >= 0
  add_ge0(-(AffineExpr::var(dim_, i)) + hi);        // hi - x_i >= 0
}

bool Polyhedron::contains(std::span<const i64> point) const {
  for (const auto& c : constraints_)
    if (!c.holds(point)) return false;
  return true;
}

std::vector<LpConstraint> Polyhedron::lp_constraints() const {
  std::vector<LpConstraint> out;
  out.reserve(constraints_.size());
  for (const auto& c : constraints_) {
    // expr >= 0  <=>  coeffs·x >= -const
    out.push_back({c.expr.as_rat_vec(), Rat(-c.expr.const_term()),
                   c.equality});
  }
  return out;
}

bool Polyhedron::is_rational_empty() const {
  LpResult r = lp_minimize(dim_, lp_constraints(), RatVec(dim_, Rat(0)));
  return r.status == LpStatus::kInfeasible;
}

bool Polyhedron::is_integer_empty(u64 enumeration_cap) const {
  if (is_rational_empty()) return true;
  std::optional<u64> n = count_points(enumeration_cap);
  // Unbounded or too large: a rational point in a full-dimensional large
  // region virtually always witnesses an integer point; be conservative
  // and report non-empty.
  if (!n) return false;
  return *n == 0;
}

BoundResult Polyhedron::minimize(const AffineExpr& objective) const {
  PP_CHECK(objective.dim() == dim_, "objective dimension mismatch");
  LpResult r = lp_minimize(dim_, lp_constraints(), objective.as_rat_vec());
  BoundResult b;
  b.status = r.status;
  if (r.status == LpStatus::kOptimal)
    b.value = r.objective + Rat(objective.const_term());
  return b;
}

BoundResult Polyhedron::maximize(const AffineExpr& objective) const {
  BoundResult b = minimize(-objective);
  if (b.status == LpStatus::kOptimal) b.value = -b.value;
  return b;
}

std::optional<std::pair<i128, i128>> Polyhedron::var_bounds(
    std::size_t i) const {
  BoundResult lo = minimize(AffineExpr::var(dim_, i));
  BoundResult hi = maximize(AffineExpr::var(dim_, i));
  if (lo.status != LpStatus::kOptimal || hi.status != LpStatus::kOptimal)
    return std::nullopt;
  return std::make_pair(lo.value.ceil(), hi.value.floor());
}

void Polyhedron::enumerate_rec(std::vector<i64>& prefix, u64 cap, u64& count,
                               std::vector<std::vector<i64>>* out,
                               bool& overflow) const {
  if (overflow) return;
  std::size_t k = prefix.size();
  if (k == dim_) {
    if (contains(prefix)) {
      ++count;
      if (count > cap) {
        overflow = true;
        return;
      }
      if (out) out->push_back(prefix);
    }
    return;
  }
  // Bounds of dimension k given the fixed prefix. Fast path: constraints
  // whose only unfixed variable is x_k yield direct bounds (exact for the
  // box/octagon templates folding emits, where inner dimensions are bounded
  // by outer ones). Missing direction falls back to an LP on the prefix-
  // restricted polyhedron. Loose direct bounds are harmless for
  // correctness: deeper levels re-check every constraint.
  bool have_lo = false, have_hi = false;
  i128 from = 0, to = 0;
  for (const auto& c : constraints_) {
    i64 ck = c.expr.coeff(k);
    bool only_k = true;
    for (std::size_t j = k + 1; j < dim_ && only_k; ++j)
      if (c.expr.coeff(j) != 0) only_k = false;
    if (!only_k) continue;
    // Residual value of the constraint with prefix substituted, minus the
    // x_k term: r + ck*x_k >= 0 (or == 0).
    i128 r = c.expr.const_term();
    for (std::size_t j = 0; j < k; ++j)
      r = add_checked(r, mul_checked(c.expr.coeff(j), prefix[j]));
    if (ck == 0) {
      bool sat = c.equality ? (r == 0) : (r >= 0);
      if (!sat) return;  // prefix already infeasible
      continue;
    }
    auto tighten_lo = [&](i128 v) {
      if (!have_lo || v > from) from = v;
      have_lo = true;
    };
    auto tighten_hi = [&](i128 v) {
      if (!have_hi || v < to) to = v;
      have_hi = true;
    };
    if (c.equality) {
      // ck*x_k == -r: empty range when -r is not divisible by ck.
      tighten_lo(ceil_div(-r, ck));
      tighten_hi(floor_div(-r, ck));
    } else if (ck > 0) {
      tighten_lo(ceil_div(-r, ck));  // x_k >= -r/ck
    } else {
      tighten_hi(floor_div(r, -ck));  // x_k <= r/(-ck)
    }
  }
  if (!have_lo || !have_hi) {
    Polyhedron fixed = *this;
    for (std::size_t j = 0; j < k; ++j)
      fixed.add_eq0(AffineExpr::var(dim_, j) - prefix[j]);
    if (!have_lo) {
      BoundResult lo = fixed.minimize(AffineExpr::var(dim_, k));
      if (lo.status == LpStatus::kInfeasible) return;
      if (lo.status != LpStatus::kOptimal) {
        overflow = true;  // unbounded direction
        return;
      }
      from = lo.value.ceil();
    }
    if (!have_hi) {
      BoundResult hi = fixed.maximize(AffineExpr::var(dim_, k));
      if (hi.status == LpStatus::kInfeasible) return;
      if (hi.status != LpStatus::kOptimal) {
        overflow = true;
        return;
      }
      to = hi.value.floor();
    }
  }
  // Innermost level with counting only: every constraint has been folded
  // into [from, to] (no constraint can involve a deeper variable here, and
  // with one free variable the feasible set is an interval), so the leaf
  // contains() check is vacuous — count the whole range at once.
  if (k + 1 == dim_ && out == nullptr) {
    if (to >= from) {
      i128 total = static_cast<i128>(count) + (to - from + 1);
      if (total > static_cast<i128>(cap)) {
        overflow = true;
        return;
      }
      count = static_cast<u64>(total);
    }
    return;
  }
  for (i128 v = from; v <= to && !overflow; ++v) {
    prefix.push_back(narrow_i64(v));
    enumerate_rec(prefix, cap, count, out, overflow);
    prefix.pop_back();
  }
}

std::optional<std::vector<std::vector<i64>>> Polyhedron::enumerate(
    u64 cap) const {
  if (dim_ == 0) {
    // Zero-dimensional: the single point () if consistent.
    std::vector<std::vector<i64>> pts;
    if (!is_rational_empty()) pts.push_back({});
    return pts;
  }
  std::vector<std::vector<i64>> pts;
  std::vector<i64> prefix;
  u64 count = 0;
  bool overflow = false;
  enumerate_rec(prefix, cap, count, &pts, overflow);
  if (overflow) return std::nullopt;
  return pts;
}

std::optional<u64> Polyhedron::count_points(u64 cap) const {
  if (dim_ == 0) return is_rational_empty() ? 0u : 1u;
  std::vector<i64> prefix;
  u64 count = 0;
  bool overflow = false;
  enumerate_rec(prefix, cap, count, nullptr, overflow);
  if (overflow) return std::nullopt;
  return count;
}

std::optional<std::vector<i64>> Polyhedron::lexmin() const {
  // Greedy dimension-by-dimension: fix each variable to the smallest
  // integer value that keeps an integer point reachable in the remaining
  // dimensions. Rational minima are lower bounds; scan upward from them
  // (the scan is short for the near-integral polyhedra folding produces,
  // and bounded by the variable's upper bound).
  std::vector<i64> point;
  Polyhedron cur = *this;
  for (std::size_t d = 0; d < dim_; ++d) {
    BoundResult lo = cur.minimize(AffineExpr::var(dim_, d));
    if (lo.status == LpStatus::kInfeasible) return std::nullopt;
    if (lo.status != LpStatus::kOptimal) return std::nullopt;  // unbounded
    BoundResult hi = cur.maximize(AffineExpr::var(dim_, d));
    if (hi.status != LpStatus::kOptimal) return std::nullopt;
    bool fixed = false;
    for (i128 v = lo.value.ceil(); v <= hi.value.floor(); ++v) {
      Polyhedron trial = cur;
      trial.add_eq0(AffineExpr::var(dim_, d) - narrow_i64(v));
      if (!trial.is_integer_empty()) {
        point.push_back(narrow_i64(v));
        cur = std::move(trial);
        fixed = true;
        break;
      }
    }
    if (!fixed) return std::nullopt;  // no integer point at all
  }
  return point;
}

Polyhedron Polyhedron::intersect(const Polyhedron& other) const {
  PP_CHECK(dim_ == other.dim_, "intersect: dimension mismatch");
  Polyhedron p = *this;
  for (const auto& c : other.constraints_) p.add(c);
  return p;
}

void Polyhedron::remove_redundant() {
  for (std::size_t i = 0; i < constraints_.size();) {
    if (constraints_[i].equality) {
      ++i;  // keep equalities; the cheap test below only covers inequalities
      continue;
    }
    Polyhedron rest(dim_);
    for (std::size_t j = 0; j < constraints_.size(); ++j)
      if (j != i) rest.add(constraints_[j]);
    BoundResult b = rest.minimize(constraints_[i].expr);
    bool redundant = b.status == LpStatus::kOptimal && b.value >= Rat(0);
    if (redundant)
      constraints_.erase(constraints_.begin() +
                         static_cast<std::ptrdiff_t>(i));
    else
      ++i;
  }
}

Polyhedron Polyhedron::project_out(std::size_t v) const {
  PP_CHECK(v < dim_, "project_out: bad variable");
  // Split constraints by the sign of the coefficient of x_v. Equalities are
  // rewritten as two inequalities first.
  std::vector<AffineExpr> lower;  // c_v > 0 : gives lower bounds on x_v
  std::vector<AffineExpr> upper;  // c_v < 0 : gives upper bounds on x_v
  std::vector<AffineExpr> free;   // c_v == 0
  auto classify = [&](const AffineExpr& e) {
    i64 cv = e.coeff(v);
    if (cv > 0)
      lower.push_back(e);
    else if (cv < 0)
      upper.push_back(e);
    else
      free.push_back(e);
  };
  for (const auto& c : constraints_) {
    classify(c.expr);
    if (c.equality) classify(-c.expr);
  }
  // New space drops variable v.
  auto drop = [&](const AffineExpr& e) {
    std::vector<i64> coeffs;
    coeffs.reserve(dim_ - 1);
    for (std::size_t i = 0; i < dim_; ++i)
      if (i != v) coeffs.push_back(e.coeff(i));
    return AffineExpr(std::move(coeffs), e.const_term());
  };
  Polyhedron out(dim_ - 1);
  for (const auto& e : free) out.add_ge0(drop(e));
  // For l with coeff a>0 (x_v >= -l'/a) and u with coeff -b<0
  // (x_v <= u'/b): combine b·l + a·u >= 0.
  for (const auto& l : lower) {
    for (const auto& u : upper) {
      i64 a = l.coeff(v);
      i64 b = -u.coeff(v);
      AffineExpr combined = l * b + u * a;  // coefficient of x_v is zero
      out.add_ge0(drop(combined));
    }
  }
  out.remove_redundant();
  return out;
}

std::string Polyhedron::str(std::span<const std::string> names) const {
  std::ostringstream os;
  os << "{ ";
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i) os << " and ";
    os << constraints_[i].str(names);
  }
  if (constraints_.empty()) os << "true";
  os << " }";
  return os.str();
}

}  // namespace pp::poly
