// Integer affine expressions, affine maps and linear constraints — the
// vocabulary of the whole polyhedral layer. Coefficients are 64-bit
// integers (folding always produces integer affine functions); evaluation
// uses 128-bit intermediates with overflow checks.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "support/matrix.hpp"

namespace pp::poly {

/// An affine expression  c₀·x₀ + … + c_{n-1}·x_{n-1} + k  over n variables.
class AffineExpr {
 public:
  AffineExpr() = default;
  explicit AffineExpr(std::size_t dim) : coeffs_(dim, 0) {}
  AffineExpr(std::vector<i64> coeffs, i64 constant)
      : coeffs_(std::move(coeffs)), constant_(constant) {}

  /// Expression selecting variable `i` of a `dim`-dimensional space.
  static AffineExpr var(std::size_t dim, std::size_t i) {
    AffineExpr e(dim);
    e.coeffs_[i] = 1;
    return e;
  }
  /// Constant expression in a `dim`-dimensional space.
  static AffineExpr constant(std::size_t dim, i64 k) {
    AffineExpr e(dim);
    e.constant_ = k;
    return e;
  }

  std::size_t dim() const { return coeffs_.size(); }
  i64 coeff(std::size_t i) const { return coeffs_[i]; }
  i64& coeff(std::size_t i) { return coeffs_[i]; }
  i64 const_term() const { return constant_; }
  i64& const_term() { return constant_; }

  bool is_constant() const {
    for (i64 c : coeffs_)
      if (c != 0) return false;
    return true;
  }

  /// Exact evaluation at an integer point.
  i128 eval(std::span<const i64> point) const;

  AffineExpr operator+(const AffineExpr& o) const;
  AffineExpr operator-(const AffineExpr& o) const;
  AffineExpr operator*(i64 s) const;
  AffineExpr operator-() const { return *this * -1; }
  AffineExpr operator+(i64 k) const;
  AffineExpr operator-(i64 k) const { return *this + (-k); }

  bool operator==(const AffineExpr& o) const {
    return coeffs_ == o.coeffs_ && constant_ == o.constant_;
  }

  /// Coefficients as rationals (with the constant appended when
  /// `with_const`), for handing to the LP solver.
  RatVec as_rat_vec(bool with_const = false) const;

  /// Human-readable rendering, e.g. "2*i - j + 3"; `names` may be empty in
  /// which case x0, x1, ... are used.
  std::string str(std::span<const std::string> names = {}) const;

 private:
  std::vector<i64> coeffs_;
  i64 constant_ = 0;
};

/// One linear condition: expr >= 0 (inequality) or expr == 0 (equality).
struct Constraint {
  AffineExpr expr;
  bool equality = false;

  static Constraint ge0(AffineExpr e) { return {std::move(e), false}; }
  static Constraint eq0(AffineExpr e) { return {std::move(e), true}; }

  bool holds(std::span<const i64> point) const {
    i128 v = expr.eval(point);
    return equality ? v == 0 : v >= 0;
  }
  std::string str(std::span<const std::string> names = {}) const {
    return expr.str(names) + (equality ? " == 0" : " >= 0");
  }
};

/// An affine map Z^n -> Z^m given by m affine expressions over n inputs.
class AffineMap {
 public:
  AffineMap() = default;
  AffineMap(std::size_t in_dim, std::vector<AffineExpr> outputs)
      : in_dim_(in_dim), outputs_(std::move(outputs)) {
    for (const auto& e : outputs_)
      PP_CHECK(e.dim() == in_dim_, "affine map output dimension mismatch");
  }

  /// The identity map on Z^n.
  static AffineMap identity(std::size_t n);

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return outputs_.size(); }
  const AffineExpr& output(std::size_t i) const { return outputs_[i]; }
  const std::vector<AffineExpr>& outputs() const { return outputs_; }

  std::vector<i128> eval(std::span<const i64> point) const;

  bool operator==(const AffineMap& o) const {
    return in_dim_ == o.in_dim_ && outputs_ == o.outputs_;
  }

  std::string str(std::span<const std::string> in_names = {}) const;

 private:
  std::size_t in_dim_ = 0;
  std::vector<AffineExpr> outputs_;
};

}  // namespace pp::poly
