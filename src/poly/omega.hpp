// Exact integer feasibility for affine constraint systems — an Omega-test
// style decision procedure (Pugh, CACM '92) layered over the same
// AffineExpr/Constraint vocabulary as the rational Polyhedron machinery.
//
// The rational simplex answers "is there a RATIONAL point"; folding and the
// oracle need the integer question, and enumeration only works for small
// bounded domains. This core decides integer feasibility exactly for the
// systems dependence analysis produces (a handful of variables, modest
// coefficients), unbounded variables included:
//
//   1. normalization: every inequality is tightened to its integer hull
//      along its own normal (divide by the coefficient gcd, floor the
//      constant); an equality whose gcd does not divide its constant is an
//      immediate refutation.
//   2. equality elimination: unit-coefficient substitution when available,
//      otherwise Pugh's symmetric-mod reduction introduces a fresh variable
//      whose defining equality has a unit coefficient (an exact,
//      feasibility-preserving rewrite), shrinking coefficients until a
//      substitution applies.
//   3. Fourier–Motzkin with integer repair: variable elimination is exact
//      when every lower/upper pair has a unit coefficient; otherwise the
//      dark shadow certifies feasibility, the real shadow certifies
//      infeasibility, and the residue is covered exactly by splintering
//      onto the finitely many hyperplanes Pugh's bound names.
//
// Everything runs in 128-bit integers with magnitude caps; blown caps or an
// exhausted step budget return kUnknown (never a wrong verdict), which
// callers treat as "fall back to the conservative rational answer".
#pragma once

#include "poly/polyhedron.hpp"

namespace pp::poly {

/// Three-valued verdict of the exact integer test.
enum class Feas : std::uint8_t {
  kInfeasible,  ///< proven: no integer point satisfies the system
  kFeasible,    ///< proven: at least one integer point exists
  kUnknown,     ///< effort/magnitude cap hit — no verdict (caller falls back)
};

const char* feas_name(Feas f);

struct OmegaOptions {
  /// Work budget: eliminations + derived rows + splinter probes. The
  /// systems dependence testing builds finish in tens of steps; the cap
  /// exists so adversarial inputs degrade to kUnknown instead of blowing
  /// up.
  u64 max_steps = 50'000;
};

/// Exact integer feasibility of `p` (bounded or not). Never wrong: a
/// definite verdict is a theorem about the integer points of `p`.
Feas integer_feasible(const Polyhedron& p, const OmegaOptions& opts = {});

}  // namespace pp::poly
