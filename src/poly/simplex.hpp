// Exact rational two-phase primal simplex. This is the single LP kernel
// behind every polyhedral question polyprof asks: emptiness of dependence
// polyhedra, variable bounds for lattice-point enumeration, and legality /
// carrying-strength of candidate schedule rows (min of the schedule latency
// difference over a dependence polyhedron).
//
// Problems are stated over *free* variables x with inequality constraints
//   a·x >= b
// and optional equalities a·x == b; the solver minimizes c·x. Internally
// variables are split x = x⁺ - x⁻ and slacks/artificials added; Bland's
// rule guarantees termination. All arithmetic is exact (pp::Rat).
#pragma once

#include <optional>
#include <vector>

#include "support/matrix.hpp"

namespace pp::poly {

enum class LpStatus {
  kOptimal,     ///< finite optimum found
  kInfeasible,  ///< constraint system has no rational solution
  kUnbounded,   ///< objective unbounded below on the feasible region
};

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  Rat objective;       ///< minimal value of c·x (valid when kOptimal)
  RatVec point;        ///< a minimizer (valid when kOptimal)
};

/// One linear condition over n free variables.
struct LpConstraint {
  RatVec coeffs;   ///< size n
  Rat rhs;         ///< right-hand side b
  bool equality;   ///< true: a·x == b, false: a·x >= b
};

/// Minimize `objective`·x subject to `constraints`. `n` is the number of
/// free variables; every coefficient vector must have size n.
LpResult lp_minimize(std::size_t n, const std::vector<LpConstraint>& constraints,
                     const RatVec& objective);

/// Convenience wrapper: maximize by negating the objective.
LpResult lp_maximize(std::size_t n, const std::vector<LpConstraint>& constraints,
                     const RatVec& objective);

}  // namespace pp::poly
