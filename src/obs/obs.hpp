// pp::obs — self-observability for the profiler itself. POLY-PROF is a
// heavy multi-stage pipeline; this subsystem answers "where did this run
// go?" at runtime with the same per-stage accounting the paper's Table 5
// reports offline (trace, IIV, DDG, fold, scheduler).
//
//  * Span: RAII wall+CPU timer, nestable, recorded into per-thread
//    buffers (no lock on the record path after a thread's first span) and
//    merged deterministically at export time.
//  * Counters: named monotonic counters / final gauges (events consumed,
//    shadow pages live, CoordPool occupancy, ring stalls, fold pieces,
//    steal counts). Each counter is tagged with a Stability: kStable
//    values are invariant across thread counts and timing (safe for the
//    --stable golden report), kTiming values are not (ring stalls, steal
//    counts, anything measured in seconds).
//  * Exporters: Chrome trace_event JSON (loadable in Perfetto /
//    chrome://tracing) and a flat run-manifest JSON for downstream
//    machine consumption (stage wall/CPU table, counter finals, budget &
//    degradation state, report fingerprint).
//
// Overhead contract: a disabled Session records nothing — every entry
// point is a branch on a constant bool (verified by bench/obs_overhead);
// constructing Spans against a null Session* is equally free, so call
// sites need no #ifdefs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/int_math.hpp"

namespace pp::obs {

/// Monotonic nanoseconds (steady clock) — the span time base.
u64 now_ns();
/// CPU nanoseconds consumed by the calling thread (0 where unsupported).
u64 thread_cpu_ns();

/// FNV-1a over bytes — the run manifest's report fingerprint.
u64 fnv1a(std::string_view bytes);

/// Whether a counter's final value is invariant across thread counts and
/// wall-clock noise. Only kStable counters appear in the --stable report
/// section (which must stay byte-identical across {1,2,4,8} threads).
enum class Stability : std::uint8_t { kStable, kTiming };

/// One closed span. `name` is a static string (span names are compile-time
/// literals at every call site).
struct SpanRec {
  const char* name = nullptr;
  std::uint32_t tid = 0;       ///< logical thread id (per-session registration order)
  u64 start_ns = 0;  ///< relative to the session epoch
  u64 dur_ns = 0;
  u64 cpu_ns = 0;    ///< thread CPU time consumed inside the span
};

class Session;

/// RAII span timer. Inactive (and free) when constructed against a null
/// or disabled Session. Move-only; end() closes early.
class Span {
 public:
  Span() = default;
  Span(Session* session, const char* name);
  Span(Span&& o) noexcept { swap(o); }
  Span& operator=(Span&& o) noexcept {
    end();
    swap(o);
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Record the span now (idempotent).
  void end();
  bool active() const { return session_ != nullptr; }

 private:
  void swap(Span& o) {
    std::swap(session_, o.session_);
    std::swap(name_, o.name_);
    std::swap(start_ns_, o.start_ns_);
    std::swap(cpu_start_ns_, o.cpu_start_ns_);
  }

  Session* session_ = nullptr;
  const char* name_ = nullptr;
  u64 start_ns_ = 0;
  u64 cpu_start_ns_ = 0;
};

/// Everything observed about one profiling run. Thread-safe: spans record
/// into per-thread buffers (registered once per thread per session),
/// counters are atomic. Export members merge the buffers in a
/// deterministic order (start time, then tid, then name).
class Session {
 public:
  explicit Session(bool enabled = true);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool enabled() const { return enabled_; }

  /// Open a span; equivalent to Span(this, name).
  Span span(const char* name) { return Span(this, name); }

  /// Add `delta` to the named monotonic counter (created on first touch;
  /// the first touch fixes the stability tag).
  void add(const char* name, i64 delta = 1,
           Stability st = Stability::kStable);
  /// Set the named gauge to its final value.
  void set(const char* name, i64 value, Stability st = Stability::kStable);
  /// Raise the named high-watermark gauge to at least `value`.
  void gauge_max(const char* name, i64 value,
                 Stability st = Stability::kTiming);

  struct CounterVal {
    i64 value = 0;
    Stability stability = Stability::kStable;
  };
  /// Name-sorted snapshot of every counter.
  std::map<std::string, CounterVal> counters() const;

  /// All closed spans, merged across threads, sorted by
  /// (start_ns, tid, name) — a deterministic order for any interleaving.
  std::vector<SpanRec> merged_spans() const;

  /// Top-level pipeline stages: spans named "stage:*", in start order.
  std::vector<SpanRec> stage_spans() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}): one complete ("X")
  /// event per span, one counter ("C") sample per counter final, plus
  /// process/thread name metadata. Loadable in Perfetto.
  std::string chrome_trace_json(
      const std::string& process_name = "poly-prof") const;

  /// Caller-supplied context stamped into the run manifest.
  struct ManifestExtra {
    std::string workload;
    unsigned threads = 0;
    bool truncated = false;
    u64 degraded_statements = 0;
    u64 diagnostics = 0;
    std::string budget_state;         ///< e.g. "unlimited" / "pieces=24"
    std::string report_fingerprint;   ///< hex FNV-1a of full_report
  };
  /// Flat run manifest: stage wall/CPU table, counter finals, degradation
  /// state — the machine-readable artifact downstream tooling consumes.
  std::string manifest_json(const ManifestExtra& extra) const;
  std::string manifest_json() const;

  /// The full_report "-- self profile --" body. With `stable`, wall/CPU
  /// times are elided ("-") and only kStable counters are printed, so the
  /// section is byte-identical across thread counts and runs.
  std::string self_profile_section(bool stable) const;

 private:
  friend class Span;

  struct ThreadBuf {
    std::uint32_t tid = 0;
    std::vector<SpanRec> spans;
  };
  struct Counter {
    std::atomic<i64> value{0};
    Stability stability = Stability::kStable;
  };

  /// The calling thread's buffer for this session (registered on first
  /// use; subsequent spans from the thread are lock-free).
  ThreadBuf* local_buf();
  Counter& counter(const char* name, Stability st);

  bool enabled_;
  u64 gen_ = 0;       ///< globally unique session generation (TLS keying)
  u64 epoch_ns_ = 0;  ///< steady-clock zero of the session

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

}  // namespace pp::obs
