#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace pp::obs {

namespace {

std::atomic<u64> g_session_gen{1};

/// Per-thread registration cache: which ThreadBuf this thread owns in
/// which live session. Keyed by (session pointer, generation) — the
/// generation disambiguates a new session allocated at a recycled
/// address, so a stale entry can never match and its dangling pointers
/// are never dereferenced.
struct TlsEntry {
  const void* session = nullptr;
  u64 gen = 0;
  void* buf = nullptr;
};
thread_local std::vector<TlsEntry> tls_bufs;

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double to_ms(u64 ns) { return static_cast<double>(ns) / 1e6; }

std::string ms_str(u64 ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", to_ms(ns));
  return buf;
}

}  // namespace

u64 now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

u64 thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<u64>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<u64>(ts.tv_nsec);
#endif
  return 0;
}

u64 fnv1a(std::string_view bytes) {
  u64 h = 14695981039346656037ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------- Span --

Span::Span(Session* session, const char* name) {
  if (session == nullptr || !session->enabled()) return;
  session_ = session;
  name_ = name;
  start_ns_ = now_ns();
  cpu_start_ns_ = thread_cpu_ns();
}

void Span::end() {
  if (session_ == nullptr) return;
  Session* s = session_;
  session_ = nullptr;
  const u64 end_ns = now_ns();
  const u64 cpu_end = thread_cpu_ns();
  SpanRec rec;
  rec.name = name_;
  rec.start_ns = start_ns_ >= s->epoch_ns_ ? start_ns_ - s->epoch_ns_ : 0;
  rec.dur_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  rec.cpu_ns = cpu_end >= cpu_start_ns_ ? cpu_end - cpu_start_ns_ : 0;
  Session::ThreadBuf* buf = s->local_buf();
  rec.tid = buf->tid;
  buf->spans.push_back(rec);
}

// ------------------------------------------------------------- Session --

Session::Session(bool enabled)
    : enabled_(enabled),
      gen_(g_session_gen.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(now_ns()) {}

Session::~Session() = default;

Session::ThreadBuf* Session::local_buf() {
  for (const TlsEntry& e : tls_bufs)
    if (e.session == this && e.gen == gen_)
      return static_cast<ThreadBuf*>(e.buf);
  ThreadBuf* buf;
  {
    std::lock_guard<std::mutex> lk(mu_);
    bufs_.push_back(std::make_unique<ThreadBuf>());
    buf = bufs_.back().get();
    buf->tid = static_cast<std::uint32_t>(bufs_.size() - 1);
  }
  // Bound the per-thread cache: entries for dead sessions accumulate in
  // long-lived worker threads (one session per profiled run). Evicting a
  // live entry is harmless — the thread just re-registers under a fresh
  // tid on its next span.
  constexpr std::size_t kMaxTlsEntries = 8;
  if (tls_bufs.size() >= kMaxTlsEntries)
    tls_bufs.erase(tls_bufs.begin());
  tls_bufs.push_back({this, gen_, buf});
  return buf;
}

Session::Counter& Session::counter(const char* name, Stability st) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    slot->stability = st;
  }
  return *slot;
}

void Session::add(const char* name, i64 delta, Stability st) {
  if (!enabled_) return;
  counter(name, st).value.fetch_add(delta, std::memory_order_relaxed);
}

void Session::set(const char* name, i64 value, Stability st) {
  if (!enabled_) return;
  counter(name, st).value.store(value, std::memory_order_relaxed);
}

void Session::gauge_max(const char* name, i64 value, Stability st) {
  if (!enabled_) return;
  auto& c = counter(name, st).value;
  i64 cur = c.load(std::memory_order_relaxed);
  while (value > cur &&
         !c.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

std::map<std::string, Session::CounterVal> Session::counters() const {
  std::map<std::string, CounterVal> out;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_)
    out[name] = {c->value.load(std::memory_order_relaxed), c->stability};
  return out;
}

std::vector<SpanRec> Session::merged_spans() const {
  std::vector<SpanRec> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& buf : bufs_)
      out.insert(out.end(), buf->spans.begin(), buf->spans.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanRec& a, const SpanRec& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return std::strcmp(a.name, b.name) < 0;
  });
  return out;
}

std::vector<SpanRec> Session::stage_spans() const {
  std::vector<SpanRec> out;
  for (const SpanRec& s : merged_spans())
    if (std::strncmp(s.name, "stage:", 6) == 0) out.push_back(s);
  return out;
}

std::string Session::chrome_trace_json(const std::string& process_name) const {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  os << "  {\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{"
     << "\"name\":\"" << json_escape(process_name) << "\"}}";
  const std::vector<SpanRec> spans = merged_spans();
  std::uint32_t max_tid = 0;
  for (const SpanRec& s : spans) max_tid = std::max(max_tid, s.tid);
  for (std::uint32_t t = 0; t <= max_tid; ++t) {
    os << ",\n  {\"ph\":\"M\",\"pid\":1,\"tid\":" << t
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << (t == 0 ? "pipeline" : "worker-" + std::to_string(t)) << "\"}}";
  }
  u64 last_ts = 0;
  for (const SpanRec& s : spans) {
    // trace_event timestamps are microseconds (double precision accepted).
    os << ",\n  {\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid << ",\"name\":\""
       << json_escape(s.name) << "\",\"cat\":\"pp\",\"ts\":"
       << static_cast<double>(s.start_ns) / 1e3
       << ",\"dur\":" << static_cast<double>(s.dur_ns) / 1e3
       << ",\"args\":{\"cpu_ms\":" << to_ms(s.cpu_ns) << "}}";
    last_ts = std::max(last_ts, s.start_ns + s.dur_ns);
  }
  // Counter finals as one "C" sample each at the trace end, so Perfetto
  // shows them as tracks alongside the spans.
  for (const auto& [name, c] : counters()) {
    os << ",\n  {\"ph\":\"C\",\"pid\":1,\"name\":\"" << json_escape(name)
       << "\",\"ts\":" << static_cast<double>(last_ts) / 1e3
       << ",\"args\":{\"value\":" << c.value << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

std::string Session::manifest_json() const { return manifest_json(ManifestExtra{}); }

std::string Session::manifest_json(const ManifestExtra& extra) const {
  std::ostringstream os;
  os << "{\n  \"tool\": \"poly-prof\",\n";
  if (!extra.workload.empty())
    os << "  \"workload\": \"" << json_escape(extra.workload) << "\",\n";
  os << "  \"threads\": " << extra.threads << ",\n";
  os << "  \"truncated\": " << (extra.truncated ? "true" : "false") << ",\n";
  os << "  \"degraded_statements\": " << extra.degraded_statements << ",\n";
  os << "  \"diagnostics\": " << extra.diagnostics << ",\n";
  os << "  \"budget\": \""
     << json_escape(extra.budget_state.empty() ? "unlimited"
                                               : extra.budget_state)
     << "\",\n";
  if (!extra.report_fingerprint.empty())
    os << "  \"report_fingerprint\": \""
       << json_escape(extra.report_fingerprint) << "\",\n";
  os << "  \"stages\": [\n";
  const std::vector<SpanRec> stages = stage_spans();
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const SpanRec& s = stages[i];
    os << "    {\"name\": \"" << json_escape(s.name + 6) << "\", \"wall_ms\": "
       << ms_str(s.dur_ns) << ", \"cpu_ms\": " << ms_str(s.cpu_ns) << "}"
       << (i + 1 < stages.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"counters\": {\n";
  const auto cs = counters();
  std::size_t i = 0;
  for (const auto& [name, c] : cs) {
    os << "    \"" << json_escape(name) << "\": " << c.value
       << (++i < cs.size() ? "," : "") << "\n";
  }
  os << "  }\n}\n";
  return os.str();
}

std::string Session::self_profile_section(bool stable) const {
  std::ostringstream os;
  os << "observability: on"
     << (stable ? " (stable: times and timing counters elided)" : "") << "\n";
  for (const SpanRec& s : stage_spans()) {
    os << "stage " << (s.name + 6) << ": ";
    if (stable)
      os << "wall - cpu -";
    else
      os << "wall " << ms_str(s.dur_ns) << " ms  cpu " << ms_str(s.cpu_ns)
         << " ms";
    os << "\n";
  }
  for (const auto& [name, c] : counters()) {
    if (stable && c.stability != Stability::kStable) continue;
    os << "counter " << name << ": " << c.value << "\n";
  }
  return os.str();
}

}  // namespace pp::obs
