#include "feedback/metrics.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace pp::feedback {

// A 64-byte line with an 8-cycle miss penalty: stride-0 hits, stride-8
// misses once per 8 accesses, anything at or beyond a line misses always.
double access_cost(std::optional<i64> stride) {
  if (!stride) return 9.0;  // non-affine: assume a miss per access
  i64 s = *stride < 0 ? -*stride : *stride;
  if (s == 0) return 1.0;
  if (s >= 64) return 9.0;
  return 1.0 + static_cast<double>(s) / 64.0 * 8.0;
}

namespace {

// Innermost-band dimensions that a permutation may rotate into the
// innermost position: the unit-vector rows of the last permutable band
// (skewed rows are not permutation candidates). A fully permutable group
// exposes every unit row.
std::vector<std::size_t> innermost_candidates(
    const scheduler::GroupSchedule& g) {
  std::vector<std::size_t> dims;
  if (g.levels.empty()) return dims;
  std::size_t band_start = 0;
  for (std::size_t i = 0; i < g.levels.size(); ++i)
    if (g.levels[i].new_band) band_start = i;
  for (std::size_t i = band_start; i < g.levels.size(); ++i) {
    const auto& row = g.levels[i].row;
    std::size_t nz = 0, dim = 0;
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (row[k] != 0) {
        ++nz;
        dim = k;
      }
    }
    if (nz == 1 && row[dim] == 1) dims.push_back(dim);
  }
  return dims;
}

}  // namespace

scheduler::Problem make_problem(const fold::FoldedProgram& prog,
                                const std::vector<int>& stmt_ids) {
  scheduler::Problem problem;
  std::set<int> wanted;
  // Loop identities: a loop is identified by its full context prefix, not
  // just its static id — two activations of the same static loop from
  // different call sites are different nests and share no iterations.
  std::map<std::vector<iiv::CtxElem>, int> loop_ids;
  for (int id : stmt_ids) {
    const auto& s = prog.stmt(id);
    if (s.is_scev) continue;  // pruned bookkeeping
    wanted.insert(id);
    scheduler::SchedStatement ss;
    ss.id = id;
    ss.depth = s.meta.depth;
    ss.ops = s.meta.executions;
    std::vector<iiv::CtxElem> prefix;
    for (const auto& part : s.meta.context.parts) {
      for (const auto& e : part) prefix.push_back(e);
      const auto& e = part.empty() ? iiv::CtxElem::block(-1, -1) : part.back();
      if (e.kind == iiv::CtxElem::Kind::kBlock) continue;  // trailing part
      auto [it, _] =
          loop_ids.try_emplace(prefix, static_cast<int>(loop_ids.size()));
      ss.loop_path.push_back(it->second);
    }
    PP_CHECK(ss.loop_path.size() == ss.depth,
             "loop path / depth mismatch in folded context");
    for (const auto& piece : s.domain.pieces())
      ss.domain_pieces.push_back(piece.domain);
    problem.statements.push_back(std::move(ss));
  }
  for (const auto& d : prog.deps) {
    if (!wanted.count(d.src) || !wanted.count(d.dst)) continue;
    scheduler::SchedDep sd;
    sd.src = d.src;
    sd.dst = d.dst;
    for (const auto& piece : d.relation.pieces()) {
      scheduler::SchedDepPiece sp;
      sp.dst_domain = piece.domain;
      sp.src_fn = piece.label_fn;
      sp.analyzable = piece.label_exact;
      sd.pieces.push_back(std::move(sp));
    }
    problem.deps.push_back(std::move(sd));
  }
  return problem;
}

double percent_affine(const fold::FoldedProgram& prog, bool strict) {
  if (prog.total_dynamic_ops == 0) return 0.0;
  std::vector<bool> flags = prog.affine_flags(strict);
  u64 n = 0;
  for (const auto& s : prog.statements)
    if (flags[static_cast<std::size_t>(s.meta.id)]) n += s.meta.executions;
  return 100.0 * static_cast<double>(n) /
         static_cast<double>(prog.total_dynamic_ops);
}

void refresh_schedule_metrics(RegionMetrics& m) {
  m.tile_depth = 0;
  m.skew_used = false;
  m.schedulable = true;
  m.parallel_ops = m.simd_ops = m.tilable_ops = 0;
  u64 grouped_ops = 0, parallel_grouped = 0, simd_grouped = 0,
      tilable_grouped = 0;
  for (const auto& g : m.sched.groups) {
    if (g.levels.empty()) continue;
    grouped_ops += g.ops;
    m.tile_depth = std::max(m.tile_depth, g.tile_depth());
    m.skew_used = m.skew_used || g.uses_skew();
    m.schedulable = m.schedulable && g.schedulable;
    if (!g.schedulable) continue;
    tilable_grouped += g.ops;
    // Coarse parallelism: some parallel level exists that is (or can be
    // permuted) non-innermost, or the single loop level is parallel.
    bool any_parallel = false, inner_band_parallel = false;
    std::size_t band_start = 0;
    for (std::size_t i = 0; i < g.levels.size(); ++i)
      if (g.levels[i].new_band) band_start = i;
    for (std::size_t i = 0; i < g.levels.size(); ++i) {
      if (!g.levels[i].parallel) continue;
      any_parallel = true;
      if (i >= band_start) inner_band_parallel = true;
    }
    // Wavefront rule (paper §8): "tiled code can always be also
    // coarse-grain parallelized using wavefront parallelism" — a tilable
    // band counts as parallelizable even without a parallel row, at the
    // price of skewing the tile schedule.
    bool wavefront = g.tile_depth() >= 2 && !any_parallel;
    if (any_parallel || wavefront) parallel_grouped += g.ops;
    if (wavefront) m.skew_used = true;
    if (inner_band_parallel) simd_grouped += g.ops;
  }
  // Scale the grouped verdicts to the full region: the paper counts ALL
  // dynamic operations of a parallel loop ("all its operations are
  // considered to be parallelizable"), including the pruned SCEV
  // bookkeeping inside it — attribute it proportionally.
  if (grouped_ops > 0) {
    auto scale = [&](u64 part) {
      return static_cast<u64>(static_cast<double>(m.ops) *
                              static_cast<double>(part) /
                              static_cast<double>(grouped_ops));
    };
    m.parallel_ops = scale(parallel_grouped);
    m.simd_ops = scale(simd_grouped);
    m.tilable_ops = scale(tilable_grouped);
  }
}

RegionMetrics analyze_region(const fold::FoldedProgram& prog, Region region,
                             const AnalyzeOptions& opts) {
  RegionMetrics m;
  m.region = region;
  m.fusion =
      opts.sched.fusion == scheduler::FusionHeuristic::kMaxFuse ? 'M' : 'S';

  std::vector<bool> affine = prog.affine_flags();
  std::set<int> in_region(region.stmts.begin(), region.stmts.end());
  for (int id : region.stmts) {
    const auto& s = prog.stmt(id);
    m.ops += s.meta.executions;
    if (s.meta.is_memory) m.mem_ops += s.meta.executions;
    if (s.meta.is_fp) m.fp_ops += s.meta.executions;
    if (affine[static_cast<std::size_t>(id)]) m.affine_ops += s.meta.executions;
    m.max_loop_depth = std::max(m.max_loop_depth, static_cast<int>(s.meta.depth));
  }

  // Schedule the region.
  scheduler::Problem problem = make_problem(prog, region.stmts);
  m.sched = scheduler::schedule(problem, opts.sched);

  // Original component count: distinct outermost loop contexts carrying
  // more than the threshold fraction of the region's ops.
  std::map<iiv::CtxElem, u64> outer_loops;
  for (int id : region.stmts) {
    const auto& s = prog.stmt(id);
    for (const auto& part : s.meta.context.parts) {
      bool found = false;
      for (const auto& e : part) {
        if (e.kind != iiv::CtxElem::Kind::kBlock) {
          outer_loops[e] += s.meta.executions;
          found = true;
          break;
        }
      }
      if (found) break;
    }
  }
  for (const auto& [_, w] : outer_loops) {
    if (static_cast<double>(w) >
        opts.component_threshold * static_cast<double>(m.ops))
      ++m.components_before;
  }
  if (m.components_before == 0 && !outer_loops.empty()) m.components_before = 1;
  m.components_after = m.sched.num_components(opts.component_threshold, m.ops);

  // Per-group transformation potential.
  double cost_before = 0.0, cost_after = 0.0;
  std::map<int, const scheduler::GroupSchedule*> group_of;
  for (const auto& g : m.sched.groups)
    for (int id : g.stmts) group_of[id] = &g;

  refresh_schedule_metrics(m);

  // Reuse / potential reuse and the locality cost model.
  for (int id : region.stmts) {
    const auto& s = prog.stmt(id);
    if (!s.meta.is_memory) {
      // Non-memory ops cost one cycle; SIMD-able groups amortize 4 lanes.
      double c = static_cast<double>(s.meta.executions);
      cost_before += c;
      auto it = group_of.find(id);
      bool simd = it != group_of.end() && !it->second->levels.empty() &&
                  it->second->schedulable &&
                  [&] {
                    std::size_t bs = 0;
                    for (std::size_t i = 0; i < it->second->levels.size(); ++i)
                      if (it->second->levels[i].new_band) bs = i;
                    for (std::size_t i = bs; i < it->second->levels.size(); ++i)
                      if (it->second->levels[i].parallel) return true;
                    return false;
                  }();
      cost_after += simd && s.meta.is_fp ? c / 4.0 : c;
      continue;
    }
    u64 e = s.meta.executions;
    std::optional<i64> cur_stride;
    if (s.meta.depth > 0)
      cur_stride = s.stride_along(s.meta.depth - 1);
    else if (s.affine_access() != nullptr)
      cur_stride = 0;  // scalar access: perfect temporal locality
    if (cur_stride && (*cur_stride == 0 || *cur_stride == kElemBytes ||
                       *cur_stride == -kElemBytes))
      m.reuse_mem_ops += e;
    cost_before += static_cast<double>(e) * access_cost(cur_stride);

    // Best stride achievable by rotating an innermost-band dimension in.
    std::optional<i64> best = cur_stride;
    auto it = group_of.find(id);
    if (it != group_of.end() && it->second->schedulable) {
      for (std::size_t dim : innermost_candidates(*it->second)) {
        if (dim >= s.meta.depth) continue;
        auto st = s.stride_along(dim);
        if (!st) continue;
        if (!best || access_cost(st) < access_cost(best)) best = st;
      }
    }
    if (best && (*best == 0 || *best == kElemBytes || *best == -kElemBytes))
      m.preuse_mem_ops += e;
    cost_after += static_cast<double>(e) * access_cost(best);
  }
  m.est_speedup = cost_after > 0.0 ? cost_before / cost_after : 1.0;

  // Transformation suggestions.
  if (!m.schedulable) {
    m.suggestions.push_back(
        "no structured transformation: non-affine dependences in region");
  } else {
    if (m.preuse_mem_ops > m.reuse_mem_ops)
      m.suggestions.push_back(
          "interchange: rotate the stride-0/1 dimension innermost "
          "(raises stride-0/1 accesses from " +
          std::to_string(m.reuse_mem_ops) + " to " +
          std::to_string(m.preuse_mem_ops) + ")");
    if (m.skew_used) m.suggestions.push_back("skew: wavefront the band");
    if (m.tile_depth >= 2)
      m.suggestions.push_back("tile: permutable band of depth " +
                              std::to_string(m.tile_depth));
    if (m.parallel_ops > 0)
      m.suggestions.push_back("parallelize: OMP PARALLEL DO on the outer "
                              "parallel loop");
    if (m.simd_ops > 0)
      m.suggestions.push_back("vectorize: SIMDize the parallel innermost loop");
  }
  // Scalar-expansion hint: a register-flow self-dependence carried by a
  // loop is a reduction scalar that blocks interchange until expanded.
  for (const auto& d : prog.deps) {
    if (d.kind != ddg::DepKind::kRegFlow) continue;
    if (!in_region.count(d.src) || !in_region.count(d.dst)) continue;
    if (d.src != d.dst) continue;
    for (const auto& piece : d.relation.pieces()) {
      if (!piece.label_exact) continue;
      // Distance nonzero anywhere?
      bool carried = false;
      for (std::size_t i = 0; i < piece.label_fn.out_dim(); ++i) {
        poly::AffineExpr diff = poly::AffineExpr::var(piece.domain.dim(), i) -
                                piece.label_fn.output(i);
        auto hi = piece.domain.maximize(diff);
        if (hi.status == poly::LpStatus::kOptimal && hi.value > Rat(0))
          carried = true;
      }
      if (carried) {
        m.suggestions.push_back(
            "array-expand: scalar reduction carried across iterations");
        break;
      }
    }
  }
  // De-duplicate suggestions.
  std::sort(m.suggestions.begin(), m.suggestions.end());
  m.suggestions.erase(std::unique(m.suggestions.begin(), m.suggestions.end()),
                      m.suggestions.end());

  // §6 parameterization: gather the large constants of the region's folded
  // domains and count the parameters the ±20-window rewrite introduces
  // ("we implemented a parameterization of iteration domains, to replace
  // those constants by a parameter").
  {
    std::vector<i128> consts;
    for (int id : region.stmts) {
      const auto& s = prog.stmt(id);
      for (const auto& piece : s.domain.pieces())
        for (const auto& c : piece.domain.constraints())
          consts.push_back(c.expr.const_term());
    }
    auto assignments = scheduler::parameterize_constants(consts);
    std::set<int> params;
    for (const auto& a : assignments)
      if (a.param >= 0) params.insert(a.param);
    m.domain_parameters = static_cast<int>(params.size());
  }
  return m;
}

}  // namespace pp::feedback
