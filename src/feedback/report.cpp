#include "feedback/report.hpp"

#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "iiv/schedule_tree.hpp"
#include "support/str.hpp"

namespace pp::feedback {

namespace {

std::string stmt_ref(const fold::FoldedStatement& s, const ir::Module* module) {
  std::ostringstream os;
  os << "S" << s.meta.id << " [" << ir::op_name(s.meta.op) << "]";
  if (module) {
    const auto& f = module->functions[static_cast<std::size_t>(s.meta.code.func)];
    os << " " << (f.source_file.empty() ? f.name : f.source_file);
    if (s.meta.line) os << ":" << s.meta.line;
  }
  return os.str();
}

std::string row_str(const std::vector<i64>& row) {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) os << ",";
    os << row[i];
  }
  os << ")";
  return os.str();
}

}  // namespace

std::string render_ast(const RegionMetrics& m, const fold::FoldedProgram& prog,
                       const ir::Module* module) {
  std::ostringstream os;
  os << "region " << m.region.name << "\n";
  for (std::size_t gi = 0; gi < m.sched.groups.size(); ++gi) {
    const auto& g = m.sched.groups[gi];
    os << "component " << gi << " (" << g.ops << " ops"
       << (g.schedulable ? "" : ", NOT schedulable: non-affine deps") << ")\n";
    int indent = 1;
    for (std::size_t l = 0; l < g.levels.size(); ++l) {
      const auto& lv = g.levels[l];
      os << std::string(static_cast<std::size_t>(indent) * 2, ' ');
      if (lv.parallel)
        os << "parallel-for";
      else
        os << "for";
      os << " t" << l << " := " << row_str(lv.row);
      std::vector<std::string> tags;
      if (lv.new_band && l > 0) tags.push_back("new band");
      if (lv.skew) tags.push_back("skewed");
      if (lv.carries) tags.push_back("carries deps");
      if (!tags.empty()) os << "   // " << join(tags, ", ");
      os << "\n";
      ++indent;
    }
    // Statements, filtered to real work (non-SCEV).
    for (int id : g.stmts) {
      const auto& s = prog.stmt(id);
      os << std::string(static_cast<std::size_t>(indent) * 2, ' ')
         << stmt_ref(s, module) << "  x" << s.meta.executions << "\n";
    }
    if (g.tile_depth() >= 2)
      os << "  // band of depth " << g.tile_depth()
         << " is fully permutable: tilable"
         << (g.uses_skew() ? " (after skewing)" : "") << "\n";
  }
  return os.str();
}

std::string summarize(const RegionMetrics& m) {
  std::ostringstream os;
  os << "region " << m.region.name << "\n";
  if (!m.analyzable) {
    os << "  UNANALYZABLE: " << m.degrade_reason << "\n";
    os << "  ops=" << m.ops << " (counted; no metrics derived)\n";
    return os.str();
  }
  os << "  ops=" << m.ops << " mem=" << m.mem_ops << " fp=" << m.fp_ops
     << " affine=" << static_cast<int>(m.pct(m.affine_ops)) << "%\n";
  os << "  loop depth (binary)=" << m.max_loop_depth
     << "  tile depth=" << m.tile_depth << "  skew=" << (m.skew_used ? "Y" : "N")
     << "  interprocedural=" << (m.region.interprocedural ? "Y" : "N") << "\n";
  os << "  parallel ops=" << static_cast<int>(m.pct(m.parallel_ops))
     << "%  simd ops=" << static_cast<int>(m.pct(m.simd_ops))
     << "%  tilable ops=" << static_cast<int>(m.pct(m.tilable_ops)) << "%\n";
  os << "  reuse=" << static_cast<int>(m.pct_mem(m.reuse_mem_ops))
     << "%  potential reuse=" << static_cast<int>(m.pct_mem(m.preuse_mem_ops))
     << "%\n";
  os << "  components: " << m.components_before << " -> "
     << m.components_after << " (" << m.fusion << ")\n";
  os << "  estimated speedup (locality/SIMD model): " << m.est_speedup
     << "x\n";
  if (m.domain_parameters > 0)
    os << "  domain constants parameterized: " << m.domain_parameters
       << " parameter(s)\n";
  for (const auto& s : m.suggestions) os << "  suggest: " << s << "\n";
  return os.str();
}

std::string render_decorated_tree(const iiv::DynScheduleTree& tree,
                                  const fold::FoldedProgram& prog,
                                  const ir::Module* module) {
  // Source references per tree node: each statement's leaf contributes its
  // file:line to every ancestor (best-effort source matching).
  std::map<int, std::set<std::string>> lines;
  for (const auto& s : prog.statements) {
    int node = tree.find(s.meta.context);
    if (node < 0 || s.meta.line == 0) continue;
    std::string ref;
    if (module) {
      const auto& f =
          module->functions[static_cast<std::size_t>(s.meta.code.func)];
      ref = (f.source_file.empty() ? f.name : f.source_file) + ":" +
            std::to_string(s.meta.line);
    } else {
      ref = "line " + std::to_string(s.meta.line);
    }
    for (int cur = node; cur >= 0; cur = tree.node(cur).parent) {
      lines[cur].insert(ref);
      if (cur == 0) break;
    }
  }

  std::ostringstream os;
  const u64 total = tree.total_weight();
  std::function<void(int, int)> rec = [&](int id, int indent) {
    const auto& n = tree.node(id);
    os << std::string(static_cast<std::size_t>(indent) * 2, ' ');
    if (id == 0) {
      os << "<program>";
    } else {
      switch (n.elem.kind) {
        case iiv::CtxElem::Kind::kLoop: os << "loop"; break;
        case iiv::CtxElem::Kind::kComp: os << "rec"; break;
        default: os << "code"; break;
      }
      os << "(" << n.static_index << ")";
    }
    if (total > 0)
      os << " " << static_cast<int>(100.0 * static_cast<double>(n.weight) /
                                    static_cast<double>(total))
         << "%";
    auto it = lines.find(id);
    if (it != lines.end() && it->second.size() <= 4)
      os << "  [" << join(it->second, ", ") << "]";
    else if (it != lines.end())
      os << "  [" << *it->second.begin() << " +" << it->second.size() - 1
         << " more]";
    os << "\n";
    for (int c : n.children) rec(c, indent + 1);
  };
  rec(0, 0);
  return os.str();
}

}  // namespace pp::feedback
