#include "feedback/flamegraph.hpp"

#include <functional>
#include <sstream>

namespace pp::feedback {

namespace {

std::string node_label(const iiv::DynScheduleTree::Node& n,
                       const ir::Module* module) {
  using Kind = iiv::CtxElem::Kind;
  std::ostringstream os;
  switch (n.elem.kind) {
    case Kind::kBlock: {
      if (module && n.elem.func >= 0)
        os << module->functions[static_cast<std::size_t>(n.elem.func)].name
           << ":bb" << n.elem.id;
      else
        os << "f" << n.elem.func << ":bb" << n.elem.id;
      break;
    }
    case Kind::kLoop:
      os << "loop L" << n.elem.id;
      if (module && n.elem.func >= 0)
        os << " ("
           << module->functions[static_cast<std::size_t>(n.elem.func)].name
           << ")";
      break;
    case Kind::kComp:
      os << "rec RC" << n.elem.id;
      break;
  }
  return os.str();
}

const char* node_color(const iiv::DynScheduleTree::Node& n, bool grayed) {
  if (grayed) return "#9a9a9a";
  switch (n.elem.kind) {
    case iiv::CtxElem::Kind::kLoop: return "#f28e2b";   // loops: orange
    case iiv::CtxElem::Kind::kComp: return "#e15759";   // recursion: red
    default: return "#4e79a7";                          // code: steel blue
  }
}

/// Truncate to at most `max_bytes` WITHOUT splitting a multi-byte UTF-8
/// sequence: a cut that lands on a continuation byte (10xxxxxx) backs up
/// to the start of the sequence, so the result stays valid UTF-8 and the
/// escaped output stays well-formed XML.
std::string truncate_utf8(const std::string& s, std::size_t max_bytes) {
  if (s.size() <= max_bytes) return s;
  std::size_t cut = max_bytes;
  while (cut > 0 &&
         (static_cast<unsigned char>(s[cut]) & 0xC0u) == 0x80u)
    --cut;
  return s.substr(0, cut);
}

/// Percentage with one decimal, rounded half-up: 999/1000 prints as
/// "99.9" (not a truncated "99") and a full root as "100.0".
std::string pct_str(double frac) {
  i64 tenths = static_cast<i64>(frac * 1000.0 + 0.5);
  return std::to_string(tenths / 10) + "." + std::to_string(tenths % 10);
}

std::string escape_xml(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_flamegraph_svg(const iiv::DynScheduleTree& tree,
                                  const ir::Module* module,
                                  const FlameGraphOptions& opts) {
  const u64 total = tree.total_weight();
  const double wpx = static_cast<double>(opts.width_px);
  int max_depth = tree.max_depth();
  int height = (max_depth + 2) * opts.row_px + 24;

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << opts.width_px
      << "\" height=\"" << height << "\" font-family=\"monospace\" "
      << "font-size=\"11\">\n";
  svg << "<text x=\"4\" y=\"14\">" << escape_xml(opts.title)
      << " (total ops: " << total << ")</text>\n";

  // Root at the bottom, leaves on top (paper §4: "the root of the tree is
  // on the bottom").
  std::function<void(int, double, int)> emit = [&](int id, double x0,
                                                   int depth) {
    const auto& n = tree.node(id);
    double frac = total == 0
                      ? 0.0
                      : static_cast<double>(n.weight) / static_cast<double>(total);
    if (id != 0) {
      if (frac < opts.min_fraction) return;
      double w = frac * wpx;
      int y = height - (depth + 1) * opts.row_px;
      bool grayed = opts.grayed.count(id) != 0;
      std::string label = node_label(n, module);
      svg << "<g><title>" << escape_xml(label) << " — " << n.weight
          << " ops (" << pct_str(frac) << "%)</title>"
          << "<rect x=\"" << x0 << "\" y=\"" << y << "\" width=\"" << w
          << "\" height=\"" << opts.row_px - 1 << "\" fill=\""
          << node_color(n, grayed) << "\" rx=\"2\"/>";
      if (w > 40)
        svg << "<text x=\"" << x0 + 3 << "\" y=\"" << y + opts.row_px - 6
            << "\" fill=\"white\">"
            << escape_xml(
                   truncate_utf8(label, static_cast<std::size_t>(w / 7)))
            << "</text>";
      svg << "</g>\n";
    }
    double x = x0;
    for (int c : n.children) {
      const auto& cn = tree.node(c);
      emit(c, x, depth + (id == 0 ? 0 : 1));
      x += total == 0 ? 0.0
                      : static_cast<double>(cn.weight) /
                            static_cast<double>(total) * wpx;
    }
  };
  emit(0, 0.0, 0);
  svg << "</svg>\n";
  return svg.str();
}

std::string render_flamegraph_ascii(const iiv::DynScheduleTree& tree,
                                    const ir::Module* module, int width) {
  std::ostringstream os;
  const u64 total = tree.total_weight();
  std::function<void(int, int)> emit = [&](int id, int indent) {
    const auto& n = tree.node(id);
    if (id != 0) {
      double frac = total == 0 ? 0.0
                               : static_cast<double>(n.weight) /
                                     static_cast<double>(total);
      int bar = static_cast<int>(frac * width);
      os << std::string(static_cast<std::size_t>(indent) * 2, ' ')
         << node_label(n, module) << " "
         << std::string(static_cast<std::size_t>(std::max(bar, 1)), '#') << " "
         << n.weight << "\n";
    }
    for (int c : n.children) emit(c, indent + (id == 0 ? 0 : 1));
  };
  emit(0, 0);
  return os.str();
}

}  // namespace pp::feedback
