// Human-readable feedback rendering (paper §6 "Final output"): the
// simplified decorated AST of the region after the suggested structured
// transformation, plus textual summaries of the metrics.
#pragma once

#include "feedback/metrics.hpp"
#include "iiv/schedule_tree.hpp"
#include "ir/ir.hpp"

namespace pp::feedback {

/// Simplified AST of the region after applying the proposed schedule:
/// loop lines with parallel/tilable/skew decorations and the statements
/// each loop surrounds (with source references where available).
std::string render_ast(const RegionMetrics& m, const fold::FoldedProgram& prog,
                       const ir::Module* module);

/// Multi-line textual report for one region (case-study style).
std::string summarize(const RegionMetrics& m);

/// The paper's last stage (Fig. 1: "best-effort assembly/source matching,
/// schedule tree decoration"): the dynamic schedule tree rendered with
/// each node decorated by the source lines of the statements executing
/// under it and its share of dynamic operations.
std::string render_decorated_tree(const iiv::DynScheduleTree& tree,
                                  const fold::FoldedProgram& prog,
                                  const ir::Module* module);

}  // namespace pp::feedback
