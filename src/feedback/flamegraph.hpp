// Flame-graph rendering of the dynamic schedule tree (paper §4/§6, Fig. 7:
// "the main visual support used for reporting aggregated feedback"). Width
// is proportional to a region's dynamic operation count; loop and
// recursive-component nodes are marked; non-affine / blacklisted regions
// can be grayed out. Output is a standalone SVG (clickable boxes carry
// <title> tooltips) plus an ASCII fallback for terminals and tests.
#pragma once

#include <set>
#include <string>

#include "iiv/schedule_tree.hpp"
#include "ir/ir.hpp"

namespace pp::feedback {

struct FlameGraphOptions {
  int width_px = 1200;
  int row_px = 18;
  double min_fraction = 0.002;  ///< hide slivers below this share
  std::set<int> grayed;         ///< schedule-tree node ids to gray out
  std::string title = "poly-prof dynamic schedule tree";
};

/// Standalone SVG document.
std::string render_flamegraph_svg(const iiv::DynScheduleTree& tree,
                                  const ir::Module* module,
                                  const FlameGraphOptions& opts = {});

/// Text rendering: one line per node, indented, with bar widths.
std::string render_flamegraph_ascii(const iiv::DynScheduleTree& tree,
                                    const ir::Module* module, int width = 72);

}  // namespace pp::feedback
