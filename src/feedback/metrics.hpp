// PolyFeat-style metrics over the folded DDG + schedule (paper §6, §8):
// everything needed to regenerate the columns of Table 5 and the case-study
// tables — %ops/%Mops/%FPops, %Aff, %||ops, %simdops, %reuse/%Preuse,
// ld-bin, TileD/%Tilops, skew, C/Comp., plus transformation suggestions
// and a locality-model speedup estimate.
#pragma once

#include <string>

#include "fold/folded_ddg.hpp"
#include "scheduler/scheduler.hpp"

namespace pp::feedback {

/// Element size assumed by stride classification (the mini-ISA is
/// word-addressed with 8-byte elements).
inline constexpr i64 kElemBytes = 8;

/// Build a scheduling problem from a set of folded statements. SCEV
/// statements are excluded (their dependence chains were pruned); all
/// remaining statements and the dependences among them are included.
scheduler::Problem make_problem(const fold::FoldedProgram& prog,
                                const std::vector<int>& stmt_ids);

/// Memory-access cost per dynamic access as a function of the byte stride
/// along the innermost schedule dimension (64-byte line, miss costs 8x).
/// Shared by the speedup estimator here and pp::transform's interchange
/// profitability model, so prediction and planning agree on the same
/// locality curve. nullopt = non-affine access (assume a miss every time).
double access_cost(std::optional<i64> stride);

/// A region of interest: a set of statements analyzed together.
struct Region {
  std::string name;         ///< e.g. "backprop.c:253 (bpnn_layerforward)"
  std::vector<int> stmts;   ///< statement ids (including SCEV statements)
  bool interprocedural = false;
};

/// All metrics for one region (one row of Table 5 / Table 3).
struct RegionMetrics {
  Region region;
  scheduler::ScheduleResult sched;

  u64 ops = 0;       ///< dynamic operations in the region
  u64 mem_ops = 0;
  u64 fp_ops = 0;
  u64 affine_ops = 0;  ///< fully affine, no over-approximation

  int max_loop_depth = 0;     ///< ld-bin
  int tile_depth = 0;         ///< TileD
  bool skew_used = false;
  bool schedulable = true;

  u64 parallel_ops = 0;       ///< ops in groups with a non-inner parallel level
  u64 simd_ops = 0;           ///< ops in groups with a parallel innermost level
  u64 tilable_ops = 0;        ///< ops in schedulable loop groups

  u64 reuse_mem_ops = 0;      ///< stride-0/1 accesses, original innermost
  u64 preuse_mem_ops = 0;     ///< stride-0/1 achievable via permutation

  int components_before = 0;  ///< C
  int components_after = 0;   ///< Comp.
  char fusion = 'S';          ///< fusion heuristic used: 'M' / 'S'

  /// False when the feedback stage itself faulted on this region: the
  /// metrics above are zero/defaults and `degrade_reason` says why. A
  /// per-region fault never escapes ProfileResult::analyze — the region
  /// degrades to "unanalyzable" (the bottom of the degradation lattice).
  bool analyzable = true;
  std::string degrade_reason;

  std::vector<std::string> suggestions;  ///< human-readable transformation list
  double est_speedup = 1.0;   ///< locality/SIMD cost-model estimate

  /// §6 parameterization: how many distinct parameters replace the
  /// region's large domain constants (with the paper's ±20 reuse window),
  /// keeping the scheduler's ILPs small. 0 when all constants are small.
  int domain_parameters = 0;

  double pct(u64 n) const {
    return ops == 0 ? 0.0 : 100.0 * static_cast<double>(n) / static_cast<double>(ops);
  }
  double pct_mem(u64 n) const {
    return mem_ops == 0
               ? 0.0
               : 100.0 * static_cast<double>(n) / static_cast<double>(mem_ops);
  }
};

struct AnalyzeOptions {
  scheduler::Options sched;
  /// Loops whose ops fraction exceeds this count as fusion components.
  double component_threshold = 0.05;
};

/// Compute all metrics for a region of the folded program.
RegionMetrics analyze_region(const fold::FoldedProgram& prog, Region region,
                             const AnalyzeOptions& opts = {});

/// Recompute the schedule-derived counters (tile_depth, skew_used,
/// schedulable, parallel/simd/tilable ops) of `m` from `m.sched` and
/// `m.ops`. Called by analyze_region, and again by anything that edits the
/// schedule's level flags afterwards (pp::verify downgrades contradicted
/// parallel claims).
void refresh_schedule_metrics(RegionMetrics& m);

/// Program-wide %Aff (Table 5 first metric): fully affine dynamic ops over
/// all dynamic ops. `strict` (the default, used for Table 5) requires
/// single-piece folds as the paper's lattice-less folding does; extended
/// mode also credits exact piecewise folds (what our multi-chunk folder
/// recognizes beyond the paper).
double percent_affine(const fold::FoldedProgram& prog, bool strict = true);

}  // namespace pp::feedback
