#include "workloads/workloads.hpp"

#include "support/diag.hpp"

namespace pp::workloads {

// Implemented in rodinia_{a,b,c}.cpp.
Workload make_rodinia_a(const std::string& name);
Workload make_rodinia_b(const std::string& name);
Workload make_rodinia_c(const std::string& name);

const std::vector<std::string>& rodinia_names() {
  static const std::vector<std::string> kNames = {
      "backprop",   "bfs",       "b+tree",        "cfd",
      "heartwall",  "hotspot",   "hotspot3D",     "kmeans",
      "lavaMD",     "leukocyte", "lud",           "myocyte",
      "nn",         "nw",        "particlefilter","pathfinder",
      "srad_v1",    "srad_v2",   "streamcluster",
  };
  return kNames;
}

Workload make_rodinia(const std::string& name) {
  if (name == "backprop") {
    Workload w;
    w.name = "backprop";
    w.module = make_backprop();
    w.ld_src = 2;
    w.region_hint = "facetrain.c:25";
    w.polly_reasons = "A";
    w.interprocedural = true;
    return w;
  }
  for (const char* n : {"bfs", "b+tree", "cfd", "heartwall", "hotspot",
                        "hotspot3D"}) {
    if (name == n) return make_rodinia_a(name);
  }
  for (const char* n :
       {"kmeans", "lavaMD", "leukocyte", "lud", "myocyte", "nn"}) {
    if (name == n) return make_rodinia_b(name);
  }
  for (const char* n : {"nw", "particlefilter", "pathfinder", "srad_v1",
                        "srad_v2", "streamcluster"}) {
    if (name == n) return make_rodinia_c(name);
  }
  fatal("unknown rodinia workload: " + name);
}

}  // namespace pp::workloads
