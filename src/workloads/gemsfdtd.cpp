// The GemsFDTD case study (paper Table 4): finite-difference time-domain
// field updates on a 3-D Yee grid. updateH_homo and updateE_homo are the
// hot functions; each sweeps three field components over the grid with
// nearest-neighbour reads of the opposite field — fully parallel, fully
// tilable 3-D loop nests. The tiled variant applies Table 4's suggested
// transformation: tile every dimension and fuse the per-component sweeps
// inside the tile so the opposite field stays in cache (the sequential
// stand-in for the paper's tile+OMP wavefront).
#include "workloads/util.hpp"
#include "workloads/workloads.hpp"

namespace pp::workloads {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

namespace {

struct Fields {
  i64 hx, hy, hz, ex, ey, ez;
  i64 nx, ny, nz;
};

Fields allocate_fields(Module& m, i64 nx, i64 ny, i64 nz) {
  Fields f;
  f.nx = nx;
  f.ny = ny;
  f.nz = nz;
  std::size_t n = static_cast<std::size_t>(nx * ny * nz);
  f.hx = m.add_global_init("Hx", random_doubles(n, 21));
  f.hy = m.add_global_init("Hy", random_doubles(n, 22));
  f.hz = m.add_global_init("Hz", random_doubles(n, 23));
  f.ex = m.add_global_init("Ex", random_doubles(n, 24));
  f.ey = m.add_global_init("Ey", random_doubles(n, 25));
  f.ez = m.add_global_init("Ez", random_doubles(n, 26));
  return f;
}

// One stencil update of dst[i][j][k] += c * (srcA[neigh] - srcA[ijk]
//                                          - srcB[neigh'] + srcB[ijk])
// over the interior. d{a,b} select the neighbour axis offset (in elements)
// for each source field.
void emit_sweep(Builder& b, const Fields& f, Reg dst, Reg srcA, i64 da,
                Reg srcB, i64 db, Reg coef, Reg i, Reg j, Reg k) {
  Reg p = elem_ptr3(b, dst, i, f.ny, j, f.nz, k);
  Reg pa = elem_ptr3(b, srcA, i, f.ny, j, f.nz, k);
  Reg pb = elem_ptr3(b, srcB, i, f.ny, j, f.nz, k);
  Reg a1 = b.load(pa, da * 8);
  Reg a0 = b.load(pa);
  Reg b1 = b.load(pb, db * 8);
  Reg b0 = b.load(pb);
  Reg d1 = b.fsub(a1, a0);
  Reg d2 = b.fsub(b1, b0);
  Reg d = b.fsub(d1, d2);
  Reg upd = b.fmul(coef, d);
  Reg old = b.load(p);
  Reg nv = b.fadd(old, upd);
  b.store(p, nv);
}

// for i in 1..nx-2, j in 1..ny-2, k in 1..nz-2: body(i, j, k)
template <typename Body>
void interior_loops(Builder& b, const Fields& f, Body body) {
  Reg iend = b.const_(f.nx - 1);
  Reg jend = b.const_(f.ny - 1);
  Reg kend = b.const_(f.nz - 1);
  b.counted_loop(1, iend, 1, [&](Reg i) {
    b.counted_loop(1, jend, 1, [&](Reg j) {
      b.counted_loop(1, kend, 1, [&](Reg k) { body(i, j, k); });
    });
  });
}

// updateH_homo: three separate component sweeps (the paper's five hottest
// loop nests live in updateH_homo/updateE_homo).
Function& add_update(Module& m, const Fields& f, const char* name, bool is_h,
                     int line) {
  Function& fn = m.add_function(name, 0, "update.F90");
  Builder b(m, fn);
  b.set_block(b.make_block());
  b.set_line(line);
  Reg coef = b.fconst(0.05);
  Reg d1 = b.const_(is_h ? f.ex : f.hx);
  Reg d2 = b.const_(is_h ? f.ey : f.hy);
  Reg d3 = b.const_(is_h ? f.ez : f.hz);
  Reg s1 = b.const_(is_h ? f.hx : f.ex);
  Reg s2 = b.const_(is_h ? f.hy : f.ey);
  Reg s3 = b.const_(is_h ? f.hz : f.ez);
  // Three sweeps, one per component (distinct loop nests, like the
  // Fortran code).
  b.set_line(line);
  interior_loops(b, f, [&](Reg i, Reg j, Reg k) {
    emit_sweep(b, f, s1, d2, 1, d3, f.nz, coef, i, j, k);
  });
  b.set_line(line + 1);
  interior_loops(b, f, [&](Reg i, Reg j, Reg k) {
    emit_sweep(b, f, s2, d3, f.ny * f.nz, d1, 1, coef, i, j, k);
  });
  b.set_line(line + 15);
  interior_loops(b, f, [&](Reg i, Reg j, Reg k) {
    emit_sweep(b, f, s3, d1, f.nz, d2, f.ny * f.nz, coef, i, j, k);
  });
  b.ret();
  return fn;
}

// Tiled + component-fused variant of the same update: the i and j loops
// are tiled (k, the stride-1 dimension, stays full so cache lines are
// consumed whole) and the three per-component sweeps are fused inside the
// tile, so each tile's slab of the opposite field is fetched once instead
// of once per component.
Function& add_update_tiled(Module& m, const Fields& f, const char* name,
                           bool is_h, int line, i64 tile) {
  Function& fn = m.add_function(name, 0, "update.F90");
  Builder b(m, fn);
  b.set_block(b.make_block());
  b.set_line(line);
  Reg coef = b.fconst(0.05);
  Reg d1 = b.const_(is_h ? f.ex : f.hx);
  Reg d2 = b.const_(is_h ? f.ey : f.hy);
  Reg d3 = b.const_(is_h ? f.ez : f.hz);
  Reg s1 = b.const_(is_h ? f.hx : f.ex);
  Reg s2 = b.const_(is_h ? f.hy : f.ey);
  Reg s3 = b.const_(is_h ? f.hz : f.ez);
  Reg iend = b.const_(f.nx - 1);
  Reg jend = b.const_(f.ny - 1);
  Reg kend = b.const_(f.nz - 1);
  // Intra-tile loop with min(t + tile, end) upper bound.
  auto tile_loop = [&](Reg t0, Reg end, auto body) {
    Reg hi = b.addi(t0, tile);
    Reg over = b.cmp(Op::kCmpLt, end, hi);
    int clamp = b.make_block();
    int go = b.make_block();
    b.br_cond(over, clamp, go);
    b.set_block(clamp);
    b.mov(end, hi);
    b.br(go);
    b.set_block(go);
    Reg v = b.fresh();
    b.mov(t0, v);
    int h = b.make_block();
    int body_bb = b.make_block();
    int x = b.make_block();
    b.br(h);
    b.set_block(h);
    Reg c = b.cmp(Op::kCmpLt, v, hi);
    b.br_cond(c, body_bb, x);
    b.set_block(body_bb);
    body(v);
    b.addi(v, 1, v);
    b.br(h);
    b.set_block(x);
  };
  b.counted_loop(1, iend, tile, [&](Reg it) {
    b.counted_loop(1, jend, tile, [&](Reg jt) {
      tile_loop(it, iend, [&](Reg i) {
        tile_loop(jt, jend, [&](Reg j) {
          b.counted_loop(1, kend, 1, [&](Reg k) {
            // All three component updates fused inside the tile.
            emit_sweep(b, f, s1, d2, 1, d3, f.nz, coef, i, j, k);
            emit_sweep(b, f, s2, d3, f.ny * f.nz, d1, 1, coef, i, j, k);
            emit_sweep(b, f, s3, d1, f.nz, d2, f.ny * f.nz, coef, i, j, k);
          });
        });
      });
    });
  });
  b.ret();
  return fn;
}

// UPML absorbing-boundary updates (the paper's other two fat functions):
// sweep the two boundary slabs in x with per-cell coefficient scaling.
Function& add_upml(Module& m, const Fields& f, const char* name, bool is_h,
                   i64 coef_global) {
  Function& fn = m.add_function(name, 0, "UPML.F90");
  Builder b(m, fn);
  b.set_block(b.make_block());
  b.set_line(is_h ? 58 : 131);
  Reg coefs = b.const_(coef_global);
  Reg f1 = b.const_(is_h ? f.hx : f.ex);
  Reg f2 = b.const_(is_h ? f.hy : f.ey);
  Reg jend = b.const_(f.ny);
  Reg kend = b.const_(f.nz);
  auto slab = [&](i64 plane) {
    Reg i = b.const_(plane);
    b.counted_loop(0, jend, 1, [&](Reg j) {
      b.counted_loop(0, kend, 1, [&](Reg k) {
        Reg p1 = elem_ptr3(b, f1, i, f.ny, j, f.nz, k);
        Reg p2 = elem_ptr3(b, f2, i, f.ny, j, f.nz, k);
        Reg cptr = elem_ptr2(b, coefs, j, f.nz, k);
        Reg c = b.load(cptr);
        Reg v1 = b.load(p1);
        Reg v2 = b.load(p2);
        Reg s1 = b.fmul(v1, c);
        Reg s2 = b.fmul(v2, c);
        b.store(p1, s1);
        b.store(p2, s2);
      });
    });
  };
  slab(0);
  slab(f.nx - 1);
  b.ret();
  return fn;
}

void add_fdtd_main(Module& m, const Fields& f, Function& uph, Function& upe,
                   Function& upmlh, Function& upmle) {
  Function& fn = m.add_function("main", 0, "GemsFDTD.F90");
  Builder b(m, fn);
  int b0 = b.make_block();
  int b1 = b.make_block();
  int b2 = b.make_block();
  b.set_block(b0);
  // Two timesteps: H, UPML_H, E, UPML_E per step (distinct call blocks).
  b.call(uph, {});
  b.call(upmlh, {});
  b.call(upe, {});
  b.call(upmle, {});
  b.br(b1);
  b.set_block(b1);
  b.call(uph, {});
  b.call(upmlh, {});
  b.call(upe, {});
  b.call(upmle, {});
  b.br(b2);
  b.set_block(b2);
  // Checksum over Hx.
  Reg acc = b.const_(0);
  Reg base = b.const_(f.hx);
  Reg n = b.const_(f.nx * f.ny * f.nz);
  b.counted_loop(0, n, 1, [&](Reg i) {
    Reg v = b.load(elem_ptr(b, base, i));
    b.xor_(acc, v, acc);
  });
  b.ret(acc);
}

}  // namespace

ir::Module make_gemsfdtd(i64 nx, i64 ny, i64 nz) {
  Module m;
  Fields f = allocate_fields(m, nx, ny, nz);
  i64 coefs = m.add_global_init(
      "upml_coefs", random_doubles(static_cast<std::size_t>(ny * nz), 27));
  Function& uph = add_update(m, f, "updateH_homo", true, 106);
  Function& upe = add_update(m, f, "updateE_homo", false, 240);
  Function& upmlh = add_upml(m, f, "UPML_updateH", true, coefs);
  Function& upmle = add_upml(m, f, "UPML_updateE", false, coefs);
  add_fdtd_main(m, f, uph, upe, upmlh, upmle);
  return m;
}

ir::Module make_gemsfdtd_tiled(i64 nx, i64 ny, i64 nz, i64 tile) {
  Module m;
  Fields f = allocate_fields(m, nx, ny, nz);
  i64 coefs = m.add_global_init(
      "upml_coefs", random_doubles(static_cast<std::size_t>(ny * nz), 27));
  Function& uph = add_update_tiled(m, f, "updateH_homo", true, 106, tile);
  Function& upe = add_update_tiled(m, f, "updateE_homo", false, 240, tile);
  // The paper tiled the homogeneous updates; the UPML boundary sweeps stay
  // as-is in both variants.
  Function& upmlh = add_upml(m, f, "UPML_updateH", true, coefs);
  Function& upmle = add_upml(m, f, "UPML_updateE", false, coefs);
  add_fdtd_main(m, f, uph, upe, upmlh, upmle);
  return m;
}

}  // namespace pp::workloads
