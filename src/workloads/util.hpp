// Shared helpers for workload construction: deterministic pseudo-random
// data (profiling must be reproducible), 2-D/3-D addressing idioms, and
// common loop shells.
#pragma once

#include "ir/builder.hpp"

namespace pp::workloads {

/// Deterministic 64-bit LCG for initializer data.
class Lcg {
 public:
  explicit Lcg(u64 seed) : state_(seed * 6364136223846793005ull + 1) {}
  u64 next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 11;
  }
  /// Uniform in [lo, hi].
  i64 range(i64 lo, i64 hi) {
    return lo + static_cast<i64>(next() % static_cast<u64>(hi - lo + 1));
  }
  /// Bit pattern of a double in [0, 1).
  i64 unit_double_bits() {
    double d = static_cast<double>(next() % 1000000) / 1000000.0;
    i64 bits;
    __builtin_memcpy(&bits, &d, sizeof bits);
    return bits;
  }

 private:
  u64 state_;
};

/// Random double-bit words for a global array.
std::vector<i64> random_doubles(std::size_t n, u64 seed);
/// Random integer words in [lo, hi].
std::vector<i64> random_ints(std::size_t n, i64 lo, i64 hi, u64 seed);

/// &base[i] with 8-byte elements: base + 8*i.
inline ir::Reg elem_ptr(ir::Builder& b, ir::Reg base, ir::Reg i) {
  ir::Reg off = b.muli(i, 8);
  return b.add(base, off);
}

/// &base[i*cols + j].
inline ir::Reg elem_ptr2(ir::Builder& b, ir::Reg base, ir::Reg i, i64 cols,
                         ir::Reg j) {
  ir::Reg rowoff = b.muli(i, cols * 8);
  ir::Reg rowptr = b.add(base, rowoff);
  ir::Reg joff = b.muli(j, 8);
  return b.add(rowptr, joff);
}

/// &base[(i*ny + j)*nz + k].
inline ir::Reg elem_ptr3(ir::Builder& b, ir::Reg base, ir::Reg i, i64 ny,
                         ir::Reg j, i64 nz, ir::Reg k) {
  ir::Reg ioff = b.muli(i, ny * nz * 8);
  ir::Reg p = b.add(base, ioff);
  ir::Reg joff = b.muli(j, nz * 8);
  p = b.add(p, joff);
  ir::Reg koff = b.muli(k, 8);
  return b.add(p, koff);
}

}  // namespace pp::workloads
