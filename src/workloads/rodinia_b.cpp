// Mini-Rodinia, part 2: kmeans, lavaMD, leukocyte, lud, myocyte, nn.
#include "workloads/util.hpp"
#include "workloads/workloads.hpp"

namespace pp::workloads {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

namespace {

// ---- kmeans ------------------------------------------------------------
// points x clusters x features distance computation with an argmin branch
// and a membership store: the distance nest is fully affine (97% %Aff in
// the paper); the argmin update is the small data-dependent residue.
Workload make_kmeans() {
  Workload w;
  w.name = "kmeans";
  w.ld_src = 4;
  w.region_hint = "kmeans_clustering.c:160";
  w.polly_reasons = "RFA";

  Module& m = w.module;
  const i64 npts = 48, nclu = 4, nfeat = 16, iters = 2;
  i64 g_pts = m.add_global_init(
      "points", random_doubles(static_cast<std::size_t>(npts * nfeat), 91));
  i64 g_ctr = m.add_global_init(
      "centers", random_doubles(static_cast<std::size_t>(nclu * nfeat), 92));
  i64 g_mem = m.add_global("membership", npts * 8);
  i64 g_swp = m.add_global("feature_swap", npts * nfeat * 8);

  Function& f = m.add_function("main", 0, "kmeans_clustering.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(140);
  Reg pts = b.const_(g_pts);
  Reg ctr = b.const_(g_ctr);
  Reg mem = b.const_(g_mem);
  Reg swp = b.const_(g_swp);
  Reg np = b.const_(npts);
  Reg nc = b.const_(nclu);
  Reg nf = b.const_(nfeat);
  Reg it = b.const_(iters);
  // Layout transformation from the CUDA port: transpose the feature
  // matrix into feature_swap[d][i] before clustering. The write walks
  // feature_swap with stride npts*8 while the read streams — the classic
  // transpose nest that no loop order fixes, only tiling.
  b.counted_loop(0, np, 1, [&](Reg i) {
    b.set_line(141);
    b.counted_loop(0, nf, 1, [&](Reg d) {
      Reg v = b.load(elem_ptr2(b, pts, i, nfeat, d));
      b.store(elem_ptr2(b, swp, d, npts, i), v);
    });
  });
  b.set_line(160);
  b.counted_loop(0, it, 1, [&](Reg) {
    b.counted_loop(0, np, 1, [&](Reg i) {
      Reg best = b.fconst(1e30);
      Reg besti = b.const_(0);
      b.counted_loop(0, nc, 1, [&](Reg c) {
        Reg dist = b.fconst(0.0);
        b.counted_loop(0, nf, 1, [&](Reg d) {
          Reg pv = b.load(elem_ptr2(b, pts, i, nfeat, d));
          Reg cv = b.load(elem_ptr2(b, ctr, c, nfeat, d));
          Reg df = b.fsub(pv, cv);
          Reg sq = b.fmul(df, df);
          b.fadd(dist, sq, dist);
        });
        // argmin via double compare on the bit patterns through f2i-free
        // branching: compare as doubles by subtracting and testing sign.
        Reg diff = b.fsub(dist, best);
        Reg di = b.f2i(diff);
        Reg zero = b.const_(0);
        Reg lt = b.cmp(Op::kCmpLt, di, zero);
        int upd = b.make_block();
        int nxt = b.make_block();
        b.br_cond(lt, upd, nxt);
        b.set_block(upd);
        b.mov(dist, best);
        b.mov(c, besti);
        b.br(nxt);
        b.set_block(nxt);
      });
      b.store(elem_ptr(b, mem, i), besti);
    });
  });
  Reg acc = b.const_(0);
  b.counted_loop(0, np, 1, [&](Reg i) {
    Reg v = b.load(elem_ptr(b, mem, i));
    b.add(acc, v, acc);
  });
  b.ret(acc);
  return w;
}

// ---- lavaMD ------------------------------------------------------------
// Particles in boxes with neighbour-box lists loaded from memory: every
// inner access goes through the indirection, so virtually nothing folds
// affinely (0% %Aff in the paper).
Workload make_lavamd() {
  Workload w;
  w.name = "lavaMD";
  w.ld_src = 4;
  w.region_hint = "kernel_cpu.c:123";
  w.polly_reasons = "BF";

  Module& m = w.module;
  const i64 nbox = 8, nnb = 3, npar = 6;
  i64 g_nb = m.add_global_init("box_nb", [&] {
    Lcg rng(101);
    std::vector<i64> v;
    for (i64 bx = 0; bx < nbox; ++bx)
      for (i64 k = 0; k < nnb; ++k) v.push_back(rng.range(0, nbox - 1));
    return v;
  }());
  i64 g_pos = m.add_global_init(
      "positions", random_doubles(static_cast<std::size_t>(nbox * npar), 103));
  i64 g_frc = m.add_global("forces", nbox * npar * 8);

  Function& f = m.add_function("main", 0, "kernel_cpu.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(123);
  Reg nbtab = b.const_(g_nb);
  Reg pos = b.const_(g_pos);
  Reg frc = b.const_(g_frc);
  Reg nb = b.const_(nbox);
  Reg nn = b.const_(nnb);
  Reg np = b.const_(npar);
  b.counted_loop(0, nb, 1, [&](Reg bx) {
    b.counted_loop(0, nn, 1, [&](Reg k) {
      Reg nbi = b.load(elem_ptr2(b, nbtab, bx, nnb, k));  // neighbour box
      b.counted_loop(0, np, 1, [&](Reg i) {
        b.counted_loop(0, np, 1, [&](Reg j) {
          Reg pi = b.load(elem_ptr2(b, pos, bx, npar, i));
          Reg pj = b.load(elem_ptr2(b, pos, nbi, npar, j));  // indirect
          Reg d = b.fsub(pi, pj);
          Reg d2 = b.fmul(d, d);
          Reg fptr = elem_ptr2(b, frc, bx, npar, i);
          Reg old = b.load(fptr);
          Reg nv = b.fadd(old, d2);
          b.store(fptr, nv);
        });
      });
    });
  });
  Reg acc = b.const_(0);
  Reg total = b.const_(nbox * npar);
  b.counted_loop(0, total, 1, [&](Reg i) {
    Reg v = b.load(elem_ptr(b, frc, i));
    b.xor_(acc, v, acc);
  });
  b.ret(acc);
  return w;
}

// ---- leukocyte ---------------------------------------------------------
// Cell tracking: an affine convolution phase (the GICOV/dilation kernels)
// plus a data-dependent tracking phase with indirect sampling (~40/60
// split, the paper reports 39% %Aff).
Workload make_leukocyte() {
  Workload w;
  w.name = "leukocyte";
  w.ld_src = 4;
  w.region_hint = "detect_main.c:51";
  w.polly_reasons = "RCBFAP";

  Module& m = w.module;
  const i64 H = 10, W = 12, K = 3, ncell = 6, samples = 40;
  i64 g_img = m.add_global_init(
      "frame", random_doubles(static_cast<std::size_t>(H * W), 111));
  i64 g_out = m.add_global("gicov", H * W * 8);
  i64 g_cellx = m.add_global_init("cellx", random_ints(ncell, 1, W - 2, 113));
  i64 g_sum = m.add_global("cellsum", ncell * 8);

  Function& f = m.add_function("main", 0, "detect_main.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(51);
  Reg img = b.const_(g_img);
  Reg out = b.const_(g_out);
  // Affine convolution phase.
  Reg he = b.const_(H - K + 1);
  Reg we = b.const_(W - K + 1);
  Reg kk = b.const_(K);
  b.counted_loop(0, he, 1, [&](Reg i) {
    b.counted_loop(0, we, 1, [&](Reg j) {
      Reg acc = b.fconst(0.0);
      b.counted_loop(0, kk, 1, [&](Reg di) {
        b.counted_loop(0, kk, 1, [&](Reg dj) {
          Reg r = b.add(i, di);
          Reg c = b.add(j, dj);
          Reg v = b.load(elem_ptr2(b, img, r, W, c));
          b.fadd(acc, v, acc);
        });
      });
      b.store(elem_ptr2(b, out, i, W, j), acc);
    });
  });
  // Data-dependent tracking phase: sample the image at cell-driven,
  // memory-loaded coordinates.
  Reg cellx = b.const_(g_cellx);
  Reg csum = b.const_(g_sum);
  Reg ncr = b.const_(ncell);
  Reg smp = b.const_(samples);
  Reg wreg = b.const_(W);
  Reg hw = b.const_(H * W);
  b.counted_loop(0, ncr, 1, [&](Reg c) {
    Reg x0 = b.load(elem_ptr(b, cellx, c));
    b.counted_loop(0, smp, 1, [&](Reg s) {
      Reg walk = b.mul(s, x0);
      Reg idx = b.rem(walk, hw);
      Reg v = b.load(elem_ptr(b, img, idx));
      (void)wreg;
      Reg ptr = elem_ptr(b, csum, c);
      Reg old = b.load(ptr);
      Reg nv = b.fadd(old, v);
      b.store(ptr, nv);
    });
  });
  Reg acc = b.const_(0);
  b.counted_loop(0, ncr, 1, [&](Reg c) {
    Reg v = b.load(elem_ptr(b, csum, c));
    b.xor_(acc, v, acc);
  });
  b.ret(acc);
  return w;
}

// ---- lud ---------------------------------------------------------------
// LU decomposition on a linearized matrix. The Rodinia code hand-linearizes
// the triangular loops with offset arithmetic the folding cannot keep
// exact everywhere (the paper reports 4% %Aff); we reproduce that by
// recovering indices with div/rem inside the inner loop.
Workload make_lud() {
  Workload w;
  w.name = "lud";
  w.ld_src = 5;
  w.region_hint = "lud.c:121";
  w.polly_reasons = "BF";

  Module& m = w.module;
  const i64 N = 12;
  i64 g_a = m.add_global_init(
      "A", random_doubles(static_cast<std::size_t>(N * N), 121));

  Function& f = m.add_function("main", 0, "lud.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(121);
  Reg a = b.const_(g_a);
  Reg n = b.const_(N);
  b.counted_loop(0, n, 1, [&](Reg k) {
    Reg kp1 = b.addi(k, 1);
    // Update column k below the diagonal, then the trailing submatrix,
    // both via a single linearized index with div/rem recovery.
    Reg nk = b.sub(n, kp1);
    Reg span = b.mul(nk, nk);
    b.counted_loop(0, span, 1, [&](Reg idx) {
      Reg di = b.div(idx, nk);
      Reg dj = b.rem(idx, nk);
      Reg i = b.add(kp1, di);
      Reg j = b.add(kp1, dj);
      Reg aik = b.load(elem_ptr2(b, a, i, N, k));
      Reg akk = b.load(elem_ptr2(b, a, k, N, k));
      Reg akj = b.load(elem_ptr2(b, a, k, N, j));
      Reg l = b.fdiv(aik, akk);
      Reg prod = b.fmul(l, akj);
      Reg ptr = elem_ptr2(b, a, i, N, j);
      Reg old = b.load(ptr);
      Reg nv = b.fsub(old, prod);
      b.store(ptr, nv);
    });
  });
  Reg acc = b.const_(0);
  Reg total = b.const_(N * N);
  b.counted_loop(0, total, 1, [&](Reg i) {
    Reg v = b.load(elem_ptr(b, a, i));
    b.xor_(acc, v, acc);
  });
  b.ret(acc);
  return w;
}

// ---- myocyte -----------------------------------------------------------
// Cardiac myocyte ODE integration: a time loop over an equations loop of
// scalar FP arithmetic with affine state accesses, plus a small
// data-dependent solver-step branch (89% %Aff in the paper).
Workload make_myocyte() {
  Workload w;
  w.name = "myocyte";
  w.ld_src = 4;
  w.region_hint = "main.c:283";
  w.polly_reasons = "CBA";

  Module& m = w.module;
  const i64 neq = 16, steps = 24;
  i64 g_y = m.add_global_init("y", random_doubles(static_cast<std::size_t>(neq), 131));
  i64 g_dy = m.add_global("dy", neq * 8);

  Function& f = m.add_function("main", 0, "main.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(283);
  Reg y = b.const_(g_y);
  Reg dy = b.const_(g_dy);
  Reg nr = b.const_(neq);
  Reg st = b.const_(steps);
  b.counted_loop(0, st, 1, [&](Reg t) {
    b.counted_loop(0, nr, 1, [&](Reg e) {
      Reg v = b.load(elem_ptr(b, y, e));
      Reg c1 = b.fconst(0.01);
      Reg c2 = b.fconst(0.99);
      Reg t1 = b.fmul(v, c2);
      Reg t2 = b.fmul(v, c1);
      Reg t3 = b.fmul(t2, v);
      Reg d = b.fsub(t1, t3);
      b.store(elem_ptr(b, dy, e), d);
    });
    // Data-dependent step-size control: halve the step when y[0] grows
    // past a threshold (the small non-affine residue).
    Reg y0 = b.load(y);
    Reg thr = b.fconst(10.0);
    Reg diff = b.fsub(y0, thr);
    Reg di = b.f2i(diff);
    Reg zero = b.const_(0);
    Reg big = b.cmp(Op::kCmpGt, di, zero);
    int damp = b.make_block();
    int apply = b.make_block();
    b.br_cond(big, damp, apply);
    b.set_block(damp);
    Reg half = b.fconst(0.5);
    Reg y0h = b.fmul(y0, half);
    b.store(y, y0h);
    b.br(apply);
    b.set_block(apply);
    b.counted_loop(0, nr, 1, [&](Reg e) {
      Reg v = b.load(elem_ptr(b, y, e));
      Reg d = b.load(elem_ptr(b, dy, e));
      Reg h = b.fconst(0.05);
      Reg hd = b.fmul(h, d);
      Reg nv = b.fadd(v, hd);
      b.store(elem_ptr(b, y, e), nv);
    });
    (void)t;
  });
  Reg acc = b.const_(0);
  b.counted_loop(0, nr, 1, [&](Reg e) {
    Reg v = b.load(elem_ptr(b, y, e));
    b.xor_(acc, v, acc);
  });
  b.ret(acc);
  return w;
}

// ---- nn ----------------------------------------------------------------
// Nearest neighbour: the actual distance loop is a tiny affine 1-D scan,
// but the bulk of the execution parses variable-length records
// (data-dependent char loops) — hence the paper's 1% %Aff with a 31% ops
// region.
Workload make_nn() {
  Workload w;
  w.name = "nn";
  w.ld_src = 1;
  w.region_hint = "nn_openmp.c:119";
  w.polly_reasons = "RF";

  Module& m = w.module;
  const i64 nrec = 24;
  // Records: [len, len words of payload...] variable length.
  std::vector<i64> blob;
  std::vector<i64> rec_off;
  Lcg rng(141);
  for (i64 r = 0; r < nrec; ++r) {
    rec_off.push_back(static_cast<i64>(blob.size()) * 8);
    i64 len = rng.range(4, 12);
    blob.push_back(len);
    for (i64 k = 0; k < len; ++k) blob.push_back(rng.range(1, 255));
  }
  i64 g_blob = m.add_global_init("records", blob);
  i64 g_off = m.add_global_init("rec_off", rec_off);
  i64 g_lat = m.add_global_init("lat", random_doubles(static_cast<std::size_t>(nrec), 143));
  i64 g_dist = m.add_global("dist", nrec * 8);

  Function& f = m.add_function("main", 0, "nn_openmp.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(100);
  Reg blobr = b.const_(g_blob);
  Reg offr = b.const_(g_off);
  Reg nrecr = b.const_(nrec);
  // Parse phase: walk every record's payload (data-dependent length),
  // computing a checksum per record. This dominates dynamic ops.
  Reg parse_acc = b.const_(0);
  b.counted_loop(0, nrecr, 1, [&](Reg r) {
    Reg off = b.load(elem_ptr(b, offr, r));
    Reg rec = b.add(blobr, off);
    Reg len = b.load(rec);
    Reg k = b.fresh();
    Reg one = b.const_(1);
    b.mov(one, k);
    Reg end = b.addi(len, 1);
    int h = b.make_block();
    int body = b.make_block();
    int x = b.make_block();
    b.br(h);
    b.set_block(h);
    Reg c = b.cmp(Op::kCmpLt, k, end);
    b.br_cond(c, body, x);
    b.set_block(body);
    Reg ch = b.load(elem_ptr(b, rec, k));
    b.add(parse_acc, ch, parse_acc);
    b.addi(k, 1, k);
    b.br(h);
    b.set_block(x);
  });
  // The affine distance loop (the region the paper reports at line 119).
  b.set_line(119);
  Reg lat = b.const_(g_lat);
  Reg dist = b.const_(g_dist);
  Reg target = b.fconst(0.5);
  b.counted_loop(0, nrecr, 1, [&](Reg r) {
    Reg v = b.load(elem_ptr(b, lat, r));
    Reg d = b.fsub(v, target);
    Reg d2 = b.fmul(d, d);
    b.store(elem_ptr(b, dist, r), d2);
  });
  Reg acc = b.fresh();
  b.mov(parse_acc, acc);
  b.counted_loop(0, nrecr, 1, [&](Reg r) {
    Reg v = b.load(elem_ptr(b, dist, r));
    b.xor_(acc, v, acc);
  });
  b.ret(acc);
  return w;
}

}  // namespace

Workload make_rodinia_b(const std::string& name) {
  if (name == "kmeans") return make_kmeans();
  if (name == "lavaMD") return make_lavamd();
  if (name == "leukocyte") return make_leukocyte();
  if (name == "lud") return make_lud();
  if (name == "myocyte") return make_myocyte();
  if (name == "nn") return make_nn();
  fatal("unknown rodinia_b workload: " + name);
}

}  // namespace pp::workloads
