// The backprop case study (paper Fig. 6/7, Tables 1-3): a two-layer neural
// network's forward pass (bpnn_layerforward) and weight update
// (bpnn_adjust_weights). Each function is called twice; the calls with the
// large layer (hidden = 16) are the paper's regions of interest. The
// transformed variant applies by hand exactly what POLY-PROF suggests:
// loop interchange + scalar expansion of the reduction.
#include "workloads/util.hpp"
#include "workloads/workloads.hpp"

namespace pp::workloads {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

namespace {

// squash(x) = x / (1 + |x|)-ish rational sigmoid (no transcendental ops in
// the mini-ISA; the call structure is what matters).
Function& add_squash(Module& m) {
  Function& f = m.add_function("squash", 1, "backprop.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(42);
  Reg one = b.fconst(1.0);
  Reg x2 = b.fmul(0, 0);
  Reg denom = b.fadd(one, x2);
  Reg r = b.fdiv(0, denom);
  b.ret(r);
  return f;
}

// bpnn_layerforward(l1, l2, conn, n1, n2): Fig. 6 pseudo-assembly. `conn`
// is an array of row pointers (a C `double**`), so the inner loop loads
// the row pointer (I1) before the cell (I2) — the pointer indirection
// POLY-PROF sees through but static analysis cannot.
Function& add_layerforward(Module& m, Function& squash) {
  Function& f = m.add_function("bpnn_layerforward", 5, "backprop.c");
  Builder b(m, f);
  const Reg l1 = 0, l2 = 1, conn = 2, n1 = 3, n2 = 4;
  int entry = b.make_block();
  b.set_block(entry);
  b.set_line(250);
  Reg j = b.fresh();
  b.const_(1, j);
  int jh = b.make_block("j.header");
  int jb = b.make_block("j.body");
  int jx = b.make_block("j.exit");
  b.br(jh);
  b.set_block(jh);
  b.set_line(253);
  Reg jle = b.cmp(Op::kCmpLe, j, n2);
  b.br_cond(jle, jb, jx);
  b.set_block(jb);
  Reg sum = b.fconst(0.0);
  Reg k = b.fresh();
  b.const_(0, k);
  int kh = b.make_block("k.header");
  int kb = b.make_block("k.body");
  int kx = b.make_block("k.exit");
  b.br(kh);
  b.set_block(kh);
  b.set_line(254);
  Reg kle = b.cmp(Op::kCmpLe, k, n1);
  b.br_cond(kle, kb, kx);
  b.set_block(kb);
  b.set_line(255);
  Reg tmp1 = b.load(elem_ptr(b, conn, k));       // I1: row pointer
  Reg tmp2 = b.load(elem_ptr(b, tmp1, j));       // I2: conn[k][j]
  Reg tmp3 = b.load(elem_ptr(b, l1, k));         // I3: l1[k]
  Reg prod = b.fmul(tmp2, tmp3);
  b.fadd(sum, prod, sum);                        // I4: sum += ...
  b.addi(k, 1, k);                               // I5
  b.br(kh);
  b.set_block(kx);
  b.set_line(257);
  Reg tmp4 = b.call(squash, {sum}, true);        // I6
  b.store(elem_ptr(b, l2, j), tmp4);             // I7
  b.addi(j, 1, j);                               // I8
  b.br(jh);
  b.set_block(jx);
  b.ret();
  return f;
}

// bpnn_adjust_weights(delta, ndelta, ly, nly, w, oldw): j outer (deltas),
// k inner (rows); w and oldw are (nly+1) x (ndelta+1) row-major arrays
// passed with their row stride.
Function& add_adjust_weights(Module& m) {
  Function& f = m.add_function("bpnn_adjust_weights", 7, "backprop.c");
  Builder b(m, f);
  const Reg delta = 0, ndelta = 1, ly = 2, nly = 3, w = 4, oldw = 5,
            rowstride = 6;
  b.set_block(b.make_block());
  b.set_line(318);
  Reg eta = b.fconst(0.3);
  Reg momentum = b.fconst(0.3);
  Reg j = b.fresh();
  b.const_(1, j);
  int jh = b.make_block();
  int jb = b.make_block();
  int jx = b.make_block();
  b.br(jh);
  b.set_block(jh);
  b.set_line(320);
  Reg jle = b.cmp(Op::kCmpLe, j, ndelta);
  b.br_cond(jle, jb, jx);
  b.set_block(jb);
  Reg dj = b.load(elem_ptr(b, delta, j));
  Reg k = b.fresh();
  b.const_(0, k);
  int kh = b.make_block();
  int kb = b.make_block();
  int kx = b.make_block();
  b.br(kh);
  b.set_block(kh);
  b.set_line(322);
  Reg kle = b.cmp(Op::kCmpLe, k, nly);
  b.br_cond(kle, kb, kx);
  b.set_block(kb);
  b.set_line(323);
  Reg lyk = b.load(elem_ptr(b, ly, k));
  Reg rowoff = b.mul(k, rowstride);
  Reg wrow = b.add(w, rowoff);
  Reg orow = b.add(oldw, rowoff);
  Reg wptr = elem_ptr(b, wrow, j);
  Reg optr = elem_ptr(b, orow, j);
  Reg old = b.load(optr);
  Reg t1 = b.fmul(eta, dj);
  Reg t2 = b.fmul(t1, lyk);
  Reg t3 = b.fmul(momentum, old);
  Reg ndw = b.fadd(t2, t3);
  Reg wv = b.load(wptr);
  Reg wnew = b.fadd(wv, ndw);
  b.store(wptr, wnew);
  b.store(optr, ndw);
  b.addi(k, 1, k);
  b.br(kh);
  b.set_block(kx);
  b.addi(j, 1, j);
  b.br(jh);
  b.set_block(jx);
  b.ret();
  return f;
}

struct Net {
  i64 input_units;   // l1 values, k: 0..input
  i64 hidden_units;  // j: 1..hidden
  i64 output_units;
  // globals
  i64 input_vals, hidden_vals, output_vals;
  i64 w_ih_rows, w_ih_data;   // row-pointer table + backing rows
  i64 w_ho_rows, w_ho_data;
  i64 delta_h, delta_o;
  i64 w_ih_old, w_ho_old;
};

Net allocate_net(Module& m, i64 input, i64 hidden, i64 output) {
  Net net;
  net.input_units = input;
  net.hidden_units = hidden;
  net.output_units = output;
  net.input_vals =
      m.add_global_init("input_vals", random_doubles(static_cast<std::size_t>(input + 1), 7));
  net.hidden_vals = m.add_global("hidden_vals", (hidden + 1) * 8);
  net.output_vals = m.add_global("output_vals", (output + 1) * 8);
  net.w_ih_data = m.add_global_init(
      "w_ih", random_doubles(static_cast<std::size_t>((input + 1) * (hidden + 1)), 11));
  net.w_ho_data = m.add_global_init(
      "w_ho", random_doubles(static_cast<std::size_t>((hidden + 1) * (output + 1)), 13));
  // Row-pointer tables (the C double** layout of Rodinia's backprop).
  std::vector<i64> ih_rows, ho_rows;
  for (i64 k = 0; k <= input; ++k)
    ih_rows.push_back(net.w_ih_data + k * (hidden + 1) * 8);
  for (i64 k = 0; k <= hidden; ++k)
    ho_rows.push_back(net.w_ho_data + k * (output + 1) * 8);
  net.w_ih_rows = m.add_global_init("w_ih_rows", ih_rows);
  net.w_ho_rows = m.add_global_init("w_ho_rows", ho_rows);
  net.delta_h = m.add_global_init(
      "delta_h", random_doubles(static_cast<std::size_t>(hidden + 1), 17));
  net.delta_o = m.add_global_init(
      "delta_o", random_doubles(static_cast<std::size_t>(output + 1), 19));
  net.w_ih_old = m.add_global("w_ih_old", (input + 1) * (hidden + 1) * 8);
  net.w_ho_old = m.add_global("w_ho_old", (hidden + 1) * (output + 1) * 8);
  return net;
}

// "libc": a memset-alike the initialization calls extensively — the
// paper's Fig. 7 grays these regions out.
Function& add_libc_memset(Module& m) {
  Function& f = m.add_function("pp_memset", 3, "libc");  // (dst, words, val)
  Builder b(m, f);
  b.set_block(b.make_block());
  b.counted_loop(0, /*end=*/1 /* r1 = word count */, 1, [&](Reg i) {
    Reg off = b.muli(i, 8);
    Reg p = b.add(0, off);
    b.store(p, 2);
  });
  b.ret();
  return f;
}

// "libc": an LCG rand-alike used by the initialization.
Function& add_libc_rand(Module& m, i64 seed_global) {
  Function& f = m.add_function("pp_rand", 0, "libc");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg sp = b.const_(seed_global);
  Reg sv = b.load(sp);
  Reg a = b.const_(6364136223846793005LL);
  Reg c = b.const_(1442695040888963407LL);
  Reg t1 = b.mul(sv, a);
  Reg t2 = b.add(t1, c);
  b.store(sp, t2);
  Reg sh = b.const_(33);
  Reg r = b.shr(t2, sh);
  b.ret(r);
  return f;
}

// bpnn_train: one epoch, exactly Rodinia's shape — two forward passes,
// the error computations, two weight adjustments.
Function& add_bpnn_train(Module& m, const Net& net, Function& layerforward,
                         Function& adjust) {
  // Error computations (small loops over deltas).
  Function& out_err = m.add_function("bpnn_output_error", 0, "backprop.c");
  {
    Builder b(m, out_err);
    b.set_block(b.make_block());
    b.set_line(280);
    Reg d = b.const_(net.delta_o);
    Reg o = b.const_(net.output_vals);
    Reg n = b.const_(net.output_units + 1);
    b.counted_loop(0, n, 1, [&](Reg j) {
      Reg ov = b.load(elem_ptr(b, o, j));
      Reg one = b.fconst(1.0);
      Reg err = b.fsub(one, ov);
      Reg dv = b.fmul(ov, err);
      b.store(elem_ptr(b, d, j), dv);
    });
    b.ret();
  }
  Function& hid_err = m.add_function("bpnn_hidden_error", 0, "backprop.c");
  {
    Builder b(m, hid_err);
    b.set_block(b.make_block());
    b.set_line(300);
    Reg d = b.const_(net.delta_h);
    Reg h = b.const_(net.hidden_vals);
    Reg n = b.const_(net.hidden_units + 1);
    b.counted_loop(0, n, 1, [&](Reg j) {
      Reg hv = b.load(elem_ptr(b, h, j));
      Reg one = b.fconst(1.0);
      Reg err = b.fsub(one, hv);
      Reg dv = b.fmul(hv, err);
      b.store(elem_ptr(b, d, j), dv);
    });
    b.ret();
  }

  Function& train = m.add_function("bpnn_train", 0, "backprop_kernel.c");
  Builder b(m, train);
  int b0 = b.make_block();
  int b1 = b.make_block();
  int b2 = b.make_block();
  int b3 = b.make_block();
  int b4 = b.make_block();
  int b5 = b.make_block();
  int b6 = b.make_block();

  b.set_block(b0);
  b.set_line(50);
  Reg in_vals = b.const_(net.input_vals);
  Reg hid_vals = b.const_(net.hidden_vals);
  Reg out_vals = b.const_(net.output_vals);
  Reg ih_rows = b.const_(net.w_ih_rows);
  Reg ho_rows = b.const_(net.w_ho_rows);
  Reg n_in = b.const_(net.input_units);
  Reg n_hid = b.const_(net.hidden_units);
  Reg n_out = b.const_(net.output_units);
  // Call 1 (hot): input -> hidden, n2 = hidden.
  b.set_line(52);
  b.call(layerforward, {in_vals, hid_vals, ih_rows, n_in, n_hid});
  b.br(b1);

  b.set_block(b1);
  // Call 2 (cold): hidden -> output.
  b.call(layerforward, {hid_vals, out_vals, ho_rows, n_hid, n_out});
  b.br(b2);

  b.set_block(b2);
  b.call(out_err, {});
  b.br(b3);
  b.set_block(b3);
  b.call(hid_err, {});
  b.br(b4);

  b.set_block(b4);
  // adjust_weights call 1 (cold): output deltas over hidden layer.
  Reg d_o = b.const_(net.delta_o);
  Reg w_ho = b.const_(net.w_ho_data);
  Reg w_ho_old = b.const_(net.w_ho_old);
  Reg ho_stride = b.const_((net.output_units + 1) * 8);
  b.call(adjust, {d_o, n_out, hid_vals, n_hid, w_ho, w_ho_old, ho_stride});
  b.br(b5);

  b.set_block(b5);
  // adjust_weights call 2 (hot): hidden deltas over the input layer.
  b.set_line(57);
  Reg d_h = b.const_(net.delta_h);
  Reg w_ih = b.const_(net.w_ih_data);
  Reg w_ih_old = b.const_(net.w_ih_old);
  Reg ih_stride = b.const_((net.hidden_units + 1) * 8);
  b.call(adjust, {d_h, n_hid, in_vals, n_in, w_ih, w_ih_old, ih_stride});
  b.br(b6);

  b.set_block(b6);
  b.ret();
  return train;
}

// facetrain-style main: initialization (memset/rand "libc" calls, the
// regions the paper's flame graph grays out), then one bpnn_train epoch,
// then a checksum.
void add_backprop_main(Module& m, const Net& net, Function& layerforward,
                       Function& adjust) {
  i64 seed = m.add_global_init("seed", {12345});
  Function& memset_fn = add_libc_memset(m);
  Function& rand_fn = add_libc_rand(m, seed);
  Function& train = add_bpnn_train(m, net, layerforward, adjust);

  Function& f = m.add_function("main", 0, "facetrain.c");
  Builder b(m, f);
  int b0 = b.make_block();
  int b1 = b.make_block();
  int b2 = b.make_block();

  b.set_block(b0);
  b.set_line(20);
  // Initialization: clear the old-weight arrays via "libc" memset and
  // perturb a few hidden values via "libc" rand.
  Reg ih_old = b.const_(net.w_ih_old);
  Reg ih_words = b.const_((net.input_units + 1) * (net.hidden_units + 1));
  Reg zero = b.const_(0);
  b.call(memset_fn, {ih_old, ih_words, zero});
  Reg ho_old = b.const_(net.w_ho_old);
  Reg ho_words = b.const_((net.hidden_units + 1) * (net.output_units + 1));
  b.call(memset_fn, {ho_old, ho_words, zero});
  Reg hid_vals0 = b.const_(net.hidden_vals);
  Reg nh = b.const_(net.hidden_units + 1);
  b.counted_loop(0, nh, 1, [&](Reg i) {
    Reg rv = b.call(rand_fn, {}, true);
    Reg seven = b.const_(7);
    Reg small = b.rem(rv, seven);
    Reg fv = b.i2f(small);
    b.store(elem_ptr(b, hid_vals0, i), fv);
  });
  b.br(b1);

  b.set_block(b1);
  b.set_line(25);
  b.call(train, {});
  b.br(b2);

  b.set_block(b2);
  Reg hid_vals = b.const_(net.hidden_vals);
  Reg n_hid = b.const_(net.hidden_units);
  // Checksum: sum of hidden values (integer bits) for cross-variant
  // equivalence checking.
  Reg acc = b.const_(0);
  Reg nh1 = b.addi(n_hid, 1);
  b.counted_loop(0, nh1, 1, [&](Reg i) {
    Reg v = b.load(elem_ptr(b, hid_vals, i));
    b.add(acc, v, acc);
  });
  Reg wbase = b.const_(net.w_ih_data);
  Reg nw = b.const_((net.input_units + 1) * (net.hidden_units + 1));
  b.counted_loop(0, nw, 1, [&](Reg i) {
    Reg v = b.load(elem_ptr(b, wbase, i));
    b.xor_(acc, v, acc);
  });
  b.ret(acc);
}

}  // namespace

ir::Module make_backprop_fig6(i64 n1, i64 n2) {
  Module m;
  i64 rows = m.add_global("conn_rows", (n1 + 1) * 8);
  i64 data = m.add_global_init(
      "conn", random_doubles(static_cast<std::size_t>((n1 + 1) * (n2 + 1)), 3));
  i64 l1 = m.add_global_init("l1", random_doubles(static_cast<std::size_t>(n1 + 1), 5));
  i64 l2 = m.add_global("l2", (n2 + 1) * 8);
  Function& squash = add_squash(m);
  Function& lf = add_layerforward(m, squash);
  Function& f = m.add_function("main", 0, "backprop_kernel.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(52);
  // Fill the row-pointer table.
  Reg rowtab = b.const_(rows);
  Reg dbase = b.const_(data);
  Reg n1r = b.const_(n1 + 1);
  b.counted_loop(0, n1r, 1, [&](Reg k) {
    Reg off = b.muli(k, (n2 + 1) * 8);
    Reg rowptr = b.add(dbase, off);
    b.store(elem_ptr(b, rowtab, k), rowptr);
  });
  Reg l1r = b.const_(l1);
  Reg l2r = b.const_(l2);
  Reg n1v = b.const_(n1);
  Reg n2v = b.const_(n2);
  b.call(lf, {l1r, l2r, rowtab, n1v, n2v});
  b.ret();
  return m;
}

ir::Module make_backprop(i64 hidden, i64 input) {
  Module m;
  Net net = allocate_net(m, input, hidden, /*output=*/1);
  Function& squash = add_squash(m);
  Function& lf = add_layerforward(m, squash);
  Function& adj = add_adjust_weights(m);
  add_backprop_main(m, net, lf, adj);
  return m;
}

ir::Module make_backprop_transformed(i64 hidden, i64 input) {
  Module m;
  Net net = allocate_net(m, input, hidden, /*output=*/1);
  Function& squash = add_squash(m);

  // layerforward with the suggested transformation: the scalar `sum` is
  // expanded into sums[j] and the loops are interchanged so j (stride-1 in
  // conn's rows) is innermost; the reduction travels the outer loop.
  Function& lf = m.add_function("bpnn_layerforward", 5, "backprop.c");
  {
    Builder b(m, lf);
    const Reg l1 = 0, l2 = 1, conn = 2, n1 = 3, n2 = 4;
    i64 sums = m.add_global("lf_sums", (net.hidden_units + 1) * 8);
    b.set_block(b.make_block());
    Reg sumsr = b.const_(sums);
    Reg n2p1 = b.addi(n2, 1);
    Reg zero = b.fconst(0.0);
    b.counted_loop(0, n2p1, 1,
                   [&](Reg j) { b.store(elem_ptr(b, sumsr, j), zero); });
    Reg n1p1 = b.addi(n1, 1);
    b.counted_loop(0, n1p1, 1, [&](Reg k) {
      Reg row = b.load(elem_ptr(b, conn, k));
      Reg l1k = b.load(elem_ptr(b, l1, k));
      Reg one = b.const_(1);
      Reg jend = b.addi(n2, 1);
      Reg j = b.fresh();
      b.mov(one, j);
      int jh = b.make_block();
      int jb = b.make_block();
      int jx = b.make_block();
      b.br(jh);
      b.set_block(jh);
      Reg c = b.cmp(Op::kCmpLt, j, jend);
      b.br_cond(c, jb, jx);
      b.set_block(jb);
      Reg cell = b.load(elem_ptr(b, row, j));
      Reg prod = b.fmul(cell, l1k);
      Reg sptr = elem_ptr(b, sumsr, j);
      Reg s = b.load(sptr);
      Reg s2 = b.fadd(s, prod);
      b.store(sptr, s2);
      b.addi(j, 1, j);
      b.br(jh);
      b.set_block(jx);
    });
    Reg one = b.const_(1);
    Reg jend = b.addi(n2, 1);
    Reg j = b.fresh();
    b.mov(one, j);
    int jh = b.make_block();
    int jb = b.make_block();
    int jx = b.make_block();
    b.br(jh);
    b.set_block(jh);
    Reg c = b.cmp(Op::kCmpLt, j, jend);
    b.br_cond(c, jb, jx);
    b.set_block(jb);
    Reg s = b.load(elem_ptr(b, sumsr, j));
    Reg sq = b.call(squash, {s}, true);
    b.store(elem_ptr(b, l2, j), sq);
    b.addi(j, 1, j);
    b.br(jh);
    b.set_block(jx);
    b.ret();
  }

  // adjust_weights interchanged: k outer (rows), j inner (stride-1).
  Function& adj = m.add_function("bpnn_adjust_weights", 7, "backprop.c");
  {
    Builder b(m, adj);
    const Reg delta = 0, ndelta = 1, ly = 2, nly = 3, w = 4, oldw = 5,
              rowstride = 6;
    b.set_block(b.make_block());
    Reg eta = b.fconst(0.3);
    Reg momentum = b.fconst(0.3);
    Reg nlyp1 = b.addi(nly, 1);
    b.counted_loop(0, nlyp1, 1, [&](Reg k) {
      Reg lyk = b.load(elem_ptr(b, ly, k));
      Reg rowoff = b.mul(k, rowstride);
      Reg wrow = b.add(w, rowoff);
      Reg orow = b.add(oldw, rowoff);
      Reg one = b.const_(1);
      Reg jend = b.addi(ndelta, 1);
      Reg j = b.fresh();
      b.mov(one, j);
      int jh = b.make_block();
      int jb = b.make_block();
      int jx = b.make_block();
      b.br(jh);
      b.set_block(jh);
      Reg c = b.cmp(Op::kCmpLt, j, jend);
      b.br_cond(c, jb, jx);
      b.set_block(jb);
      Reg dj = b.load(elem_ptr(b, delta, j));
      Reg wptr = elem_ptr(b, wrow, j);
      Reg optr = elem_ptr(b, orow, j);
      Reg old = b.load(optr);
      Reg t1 = b.fmul(eta, dj);
      Reg t2 = b.fmul(t1, lyk);
      Reg t3 = b.fmul(momentum, old);
      Reg ndw = b.fadd(t2, t3);
      Reg wv = b.load(wptr);
      Reg wnew = b.fadd(wv, ndw);
      b.store(wptr, wnew);
      b.store(optr, ndw);
      b.addi(j, 1, j);
      b.br(jh);
      b.set_block(jx);
    });
    b.ret();
  }

  add_backprop_main(m, net, lf, adj);
  return m;
}

}  // namespace pp::workloads
