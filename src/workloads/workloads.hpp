// The polyprof workload suite: mini-ISA re-creations of the benchmarks the
// paper evaluates on — the 19 CPU benchmarks of Rodinia 3.1 (Table 5), the
// GemsFDTD case study (Table 4), and the backprop case study (Fig. 6/7,
// Tables 1-3). Each kernel preserves the *dependence and control
// structure* that drives POLY-PROF's metrics (loop nesting across calls,
// reductions, stencils, wavefronts, pointer chasing, data-dependent
// control, hand-linearized index arithmetic), at scaled-down sizes.
//
// Transformed variants (interchanged / tiled) of the case-study kernels
// are provided so benches can measure VM-cycle-model speedups the way the
// paper measures GFlop/s before/after applying the suggested
// transformation by hand.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace pp::workloads {

/// One benchmark: a module plus the metadata Table 5 needs.
struct Workload {
  std::string name;
  ir::Module module;
  int ld_src = 0;            ///< source-level max loop depth (paper ld-src)
  std::string region_hint;   ///< the paper's "Region" column, e.g. "facetrain.c:25"
  std::string polly_reasons; ///< paper's "Reasons why Polly failed" letters
  bool interprocedural = false;
};

/// Names of the 19 mini-Rodinia benchmarks, in Table 5 order.
const std::vector<std::string>& rodinia_names();

/// Build one mini-Rodinia benchmark by name (throws on unknown name).
Workload make_rodinia(const std::string& name);

// --- case studies -------------------------------------------------------

/// The exact Fig. 6 kernel: bpnn_layerforward pseudo-assembly with the
/// paper's inclusive bounds (k: 0..n1, j: 1..n2). Defaults reproduce
/// Table 2's canonical ranges 0<=ck<=42 and 0<=cj<=15 (43 and 16
/// iterations respectively).
ir::Module make_backprop_fig6(i64 n1 = 42, i64 n2 = 16);

/// Full mini-backprop (Fig. 7): layerforward + adjust_weights, each called
/// twice with different sizes; the big calls are the regions of interest.
ir::Module make_backprop(i64 hidden = 16, i64 input = 48);
/// The transformed version: interchange + scalar expansion applied by hand
/// (what the paper's authors did to get the Table 3 speedups).
ir::Module make_backprop_transformed(i64 hidden = 16, i64 input = 48);

/// GemsFDTD-style field updates: updateH_homo / updateE_homo 3-D stencils.
ir::Module make_gemsfdtd(i64 nx = 12, i64 ny = 12, i64 nz = 12);
/// Tiled (tile all dims, as Table 4's transformation) variant.
ir::Module make_gemsfdtd_tiled(i64 nx = 12, i64 ny = 12, i64 nz = 12,
                               i64 tile = 4);

}  // namespace pp::workloads
