#include "workloads/util.hpp"

namespace pp::workloads {

std::vector<i64> random_doubles(std::size_t n, u64 seed) {
  Lcg rng(seed);
  std::vector<i64> out(n);
  for (auto& w : out) w = rng.unit_double_bits();
  return out;
}

std::vector<i64> random_ints(std::size_t n, i64 lo, i64 hi, u64 seed) {
  Lcg rng(seed);
  std::vector<i64> out(n);
  for (auto& w : out) w = rng.range(lo, hi);
  return out;
}

}  // namespace pp::workloads
