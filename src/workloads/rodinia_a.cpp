// Mini-Rodinia, part 1: bfs, b+tree, cfd, heartwall, hotspot, hotspot3D.
// Each kernel re-creates the control/dependence structure that determines
// the paper's Table 5 row for the benchmark — graph traversal with
// data-dependent frontiers (bfs), pointer-chased tree descent (b+tree),
// neighbour-based flux sweeps (cfd), hand-linearized loops with modulo
// index recovery (heartwall, hotspot), and a clean 3-D stencil
// (hotspot3D).
#include "workloads/util.hpp"
#include "workloads/workloads.hpp"

namespace pp::workloads {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

namespace {

// ---- bfs ---------------------------------------------------------------
// Frontier-based breadth-first search over a CSR graph. Trip counts are
// data dependent and the edge targets are loaded from memory: nothing here
// is affine, matching the paper's 21% %Aff (the affine part is init code).
Workload make_bfs() {
  Workload w;
  w.name = "bfs";
  w.ld_src = 3;
  w.region_hint = "bfs.cpp:137";
  w.polly_reasons = "BF";

  const i64 n = 48, max_deg = 4;
  Module& m = w.module;
  Lcg rng(31);
  std::vector<i64> offsets, edges;
  for (i64 v = 0; v < n; ++v) {
    offsets.push_back(static_cast<i64>(edges.size()));
    i64 deg = rng.range(1, max_deg);
    for (i64 e = 0; e < deg; ++e) edges.push_back(rng.range(0, n - 1));
  }
  offsets.push_back(static_cast<i64>(edges.size()));
  i64 g_off = m.add_global_init("offsets", offsets);
  i64 g_edges = m.add_global_init("edges", edges);
  i64 g_cost = m.add_global("cost", n * 8);
  i64 g_mask = m.add_global("mask", n * 8);

  Function& f = m.add_function("main", 0, "bfs.cpp");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(100);
  Reg cost = b.const_(g_cost);
  Reg mask = b.const_(g_mask);
  Reg offs = b.const_(g_off);
  Reg edg = b.const_(g_edges);
  Reg nreg = b.const_(n);
  Reg minus1 = b.const_(-1);
  // init: cost = -1, mask = 0; source vertex 0.
  b.counted_loop(0, nreg, 1, [&](Reg v) {
    b.store(elem_ptr(b, cost, v), minus1);
    Reg z = b.const_(0);
    b.store(elem_ptr(b, mask, v), z);
  });
  Reg zero = b.const_(0);
  Reg one = b.const_(1);
  b.store(cost, zero);       // cost[0] = 0
  b.store(mask, one);        // mask[0] = 1

  // while (changed) { for v: if mask[v]: for e: relax }
  Reg changed = b.fresh();
  b.mov(one, changed);
  int wh = b.make_block("while.header");
  int wb = b.make_block("while.body");
  int wx = b.make_block("while.exit");
  b.br(wh);
  b.set_block(wh);
  b.set_line(137);
  Reg go = b.cmp(Op::kCmpNe, changed, zero);
  b.br_cond(go, wb, wx);
  b.set_block(wb);
  b.mov(zero, changed);
  b.counted_loop(0, nreg, 1, [&](Reg v) {
    Reg mv = b.load(elem_ptr(b, mask, v));
    Reg on = b.cmp(Op::kCmpNe, mv, zero);
    int relax = b.make_block();
    int skip = b.make_block();
    b.br_cond(on, relax, skip);
    b.set_block(relax);
    b.store(elem_ptr(b, mask, v), zero);
    Reg cv = b.load(elem_ptr(b, cost, v));
    Reg e0 = b.load(elem_ptr(b, offs, v));
    Reg e1 = b.load(elem_ptr(b, offs, v), 8);
    Reg e = b.fresh();
    b.mov(e0, e);
    int eh = b.make_block();
    int eb = b.make_block();
    int ex = b.make_block();
    b.br(eh);
    b.set_block(eh);
    Reg more = b.cmp(Op::kCmpLt, e, e1);
    b.br_cond(more, eb, ex);
    b.set_block(eb);
    Reg tgt = b.load(elem_ptr(b, edg, e));
    Reg ct = b.load(elem_ptr(b, cost, tgt));
    Reg unseen = b.cmp(Op::kCmpEq, ct, minus1);
    int upd = b.make_block();
    int nxt = b.make_block();
    b.br_cond(unseen, upd, nxt);
    b.set_block(upd);
    Reg nc = b.addi(cv, 1);
    b.store(elem_ptr(b, cost, tgt), nc);
    b.store(elem_ptr(b, mask, tgt), one);
    b.mov(one, changed);
    b.br(nxt);
    b.set_block(nxt);
    b.addi(e, 1, e);
    b.br(eh);
    b.set_block(ex);
    b.br(skip);
    b.set_block(skip);
  });
  b.br(wh);
  b.set_block(wx);
  Reg acc = b.const_(0);
  b.counted_loop(0, nreg, 1, [&](Reg v) {
    Reg c = b.load(elem_ptr(b, cost, v));
    b.add(acc, c, acc);
  });
  b.ret(acc);
  return w;
}

// ---- b+tree ------------------------------------------------------------
// Array-encoded B+tree: each node is [key0..key3, child0..child4]. Query
// descent chases child pointers; key counts drive data-dependent inner
// loops.
Workload make_btree() {
  Workload w;
  w.name = "b+tree";
  w.ld_src = 3;
  w.region_hint = "main.c:2345";
  w.polly_reasons = "BF";

  Module& m = w.module;
  const i64 fanout = 4, levels = 3, queries = 24;
  const i64 node_words = 8;  // 4 split keys + 4 children (or leaf values)
  const i64 key_span = fanout * fanout * fanout;  // 64 keys
  // Build the perfect tree breadth-first. A node's children are byte
  // offsets into the tree blob; leaf "children" hold 8-aligned payloads.
  std::vector<i64> tree;
  std::vector<std::pair<i64, i64>> ranges = {{0, key_span}};
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    auto [lo, hi] = ranges[i];
    std::vector<i64> node(static_cast<std::size_t>(node_words), 0);
    i64 step = (hi - lo) / fanout;
    bool leaf = step <= 1;
    for (i64 c = 0; c < fanout; ++c) {
      node[static_cast<std::size_t>(c)] = lo + (c + 1) * step;  // split keys
      if (leaf) {
        node[static_cast<std::size_t>(fanout + c)] =
            ((lo + c) % 21) * node_words * 8;  // 8-aligned pseudo-value
      } else {
        node[static_cast<std::size_t>(fanout + c)] =
            static_cast<i64>(ranges.size()) * node_words * 8;  // child addr
        ranges.emplace_back(lo + c * step, lo + (c + 1) * step);
      }
    }
    tree.insert(tree.end(), node.begin(), node.end());
  }
  i64 g_tree = m.add_global_init("tree", tree);
  i64 g_q = m.add_global_init("queries", random_ints(queries, 0, key_span - 1, 41));
  i64 g_out = m.add_global("results", queries * 8);

  Function& f = m.add_function("main", 0, "main.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(2345);
  Reg troot = b.const_(g_tree);
  Reg qbase = b.const_(g_q);
  Reg obase = b.const_(g_out);
  Reg qn = b.const_(queries);
  Reg lvls = b.const_(levels);
  b.counted_loop(0, qn, 1, [&](Reg q) {
    Reg key = b.load(elem_ptr(b, qbase, q));
    Reg node = b.fresh();
    b.mov(troot, node);
    b.counted_loop(0, lvls, 1, [&](Reg) {
      // find child index: first key slot whose split key exceeds `key`.
      Reg idx = b.const_(0);
      Reg four = b.const_(4);
      int sh = b.make_block();
      int sb = b.make_block();
      int sx = b.make_block();
      b.br(sh);
      b.set_block(sh);
      Reg in_range = b.cmp(Op::kCmpLt, idx, four);
      b.br_cond(in_range, sb, sx);
      b.set_block(sb);
      Reg k = b.load(elem_ptr(b, node, idx));
      Reg done = b.cmp(Op::kCmpLt, key, k);
      int stop = b.make_block();
      int cont = b.make_block();
      b.br_cond(done, stop, cont);
      b.set_block(cont);
      b.addi(idx, 1, idx);
      b.br(sh);
      b.set_block(stop);
      b.br(sx);
      b.set_block(sx);
      Reg clamped = b.fresh();
      b.mov(idx, clamped);
      Reg over = b.cmp(Op::kCmpGe, clamped, four);
      int fix = b.make_block();
      int ok = b.make_block();
      b.br_cond(over, fix, ok);
      b.set_block(fix);
      Reg three = b.const_(3);
      b.mov(three, clamped);
      b.br(ok);
      b.set_block(ok);
      Reg slot = b.addi(clamped, 4);
      Reg child = b.load(elem_ptr(b, node, slot));
      Reg cptr = b.add(troot, child);
      b.mov(cptr, node);
    });
    // After `levels` descents, the "node" slot we ended at held a value
    // address computed above; store something derived.
    Reg v = b.load(node);
    b.store(elem_ptr(b, obase, q), v);
  });
  Reg acc = b.const_(0);
  b.counted_loop(0, qn, 1, [&](Reg q) {
    Reg v = b.load(elem_ptr(b, obase, q));
    b.add(acc, v, acc);
  });
  b.ret(acc);
  return w;
}

// ---- cfd ---------------------------------------------------------------
// euler3d-style flux computation: per element, accumulate flux over 4
// neighbours x 3 dims. Neighbour indices are mostly structured (e±1) with
// one indirection-based table, matching the paper's high %Aff with an 'F'
// Polly failure.
Workload make_cfd() {
  Workload w;
  w.name = "cfd";
  w.ld_src = 5;
  w.region_hint = "euler3d_cpu.cpp:480";
  w.polly_reasons = "F";

  Module& m = w.module;
  const i64 nel = 96, ndim = 3, nnb = 4, steps = 2;
  i64 g_v = m.add_global_init(
      "variables", random_doubles(static_cast<std::size_t>(nel * ndim), 51));
  i64 g_f = m.add_global("fluxes", nel * ndim * 8);
  i64 g_nb = m.add_global_init("neighbors", [&] {
    std::vector<i64> nb;
    for (i64 e = 0; e < nel; ++e) {
      nb.push_back(e == 0 ? nel - 1 : e - 1);
      nb.push_back(e == nel - 1 ? 0 : e + 1);
      nb.push_back((e + 7) % nel);
      nb.push_back((e + nel - 7) % nel);
    }
    return nb;
  }());

  Function& f = m.add_function("main", 0, "euler3d_cpu.cpp");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(480);
  Reg v = b.const_(g_v);
  Reg fl = b.const_(g_f);
  Reg nb = b.const_(g_nb);
  Reg nelr = b.const_(nel);
  Reg ndimr = b.const_(ndim);
  Reg nnbr = b.const_(nnb);
  Reg stepsr = b.const_(steps);
  b.counted_loop(0, stepsr, 1, [&](Reg) {
    b.counted_loop(0, nelr, 1, [&](Reg e) {
      b.counted_loop(0, nnbr, 1, [&](Reg n) {
        Reg slot = b.muli(e, nnb);
        Reg slot2 = b.add(slot, n);
        Reg nbe = b.load(elem_ptr(b, nb, slot2));  // indirection ('F')
        b.counted_loop(0, ndimr, 1, [&](Reg d) {
          Reg mine = elem_ptr2(b, v, e, ndim, d);
          Reg theirs = elem_ptr2(b, v, nbe, ndim, d);
          Reg a = b.load(mine);
          Reg c = b.load(theirs);
          Reg diff = b.fsub(a, c);
          Reg fptr = elem_ptr2(b, fl, e, ndim, d);
          Reg old = b.load(fptr);
          Reg nv = b.fadd(old, diff);
          b.store(fptr, nv);
        });
      });
    });
  });
  Reg acc = b.const_(0);
  Reg total = b.const_(nel * ndim);
  b.counted_loop(0, total, 1, [&](Reg i) {
    Reg x = b.load(elem_ptr(b, fl, i));
    b.xor_(acc, x, acc);
  });
  b.ret(acc);
  return w;
}

// ---- heartwall ---------------------------------------------------------
// Hand-linearized nested loops whose index recovery uses div/rem — the
// paper's explanation for its 1% %Aff ("hand linearized nested loops whose
// bounds use modulo expressions").
Workload make_heartwall() {
  Workload w;
  w.name = "heartwall";
  w.ld_src = 7;
  w.region_hint = "main.c:536";
  w.polly_reasons = "RCBF";

  Module& m = w.module;
  const i64 H = 12, W = 16, frames = 2, points = 8;
  i64 g_img = m.add_global_init(
      "image", random_doubles(static_cast<std::size_t>(H * W), 61));
  i64 g_acc = m.add_global("accum", points * 8);

  Function& f = m.add_function("main", 0, "main.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(536);
  Reg img = b.const_(g_img);
  Reg accb = b.const_(g_acc);
  Reg fr = b.const_(frames);
  Reg pt = b.const_(points);
  Reg hw = b.const_(H * W);
  Reg wreg = b.const_(W);
  b.counted_loop(0, fr, 1, [&](Reg frame) {
    b.counted_loop(0, pt, 1, [&](Reg p) {
      // Linearized template sweep around a point-dependent offset, with
      // modulo wraparound: addresses are non-affine in the IVs.
      Reg anchor = b.muli(p, 23);
      Reg fshift = b.muli(frame, 5);
      Reg base0 = b.add(anchor, fshift);
      b.counted_loop(0, hw, 1, [&](Reg idx) {
        Reg lin = b.add(base0, idx);
        Reg wrapped = b.rem(lin, hw);           // modulo indexing
        Reg r = b.div(wrapped, wreg);           // row recovery
        Reg c = b.rem(wrapped, wreg);           // col recovery
        Reg rw = b.mul(r, wreg);
        Reg rc = b.add(rw, c);
        Reg pix = b.load(elem_ptr(b, img, rc));
        Reg aptr = elem_ptr(b, accb, p);
        Reg old = b.load(aptr);
        Reg nv = b.fadd(old, pix);
        b.store(aptr, nv);
      });
    });
  });
  Reg acc = b.const_(0);
  b.counted_loop(0, pt, 1, [&](Reg p) {
    Reg x = b.load(elem_ptr(b, accb, p));
    b.xor_(acc, x, acc);
  });
  b.ret(acc);
  return w;
}

// ---- hotspot -----------------------------------------------------------
// 2-D thermal stencil in its hand-linearized OpenMP form: one loop over
// r*C+c with div/rem row/column recovery and modulo-clamped neighbour
// indices — 0% affine, exactly the paper's finding.
Workload make_hotspot() {
  Workload w;
  w.name = "hotspot";
  w.ld_src = 4;
  w.region_hint = "hotspot_openmp.cpp:318";
  w.polly_reasons = "B";

  Module& m = w.module;
  const i64 R = 12, C = 16, steps = 2;
  i64 g_t = m.add_global_init(
      "temp", random_doubles(static_cast<std::size_t>(R * C), 71));
  i64 g_p = m.add_global_init(
      "power", random_doubles(static_cast<std::size_t>(R * C), 72));
  i64 g_o = m.add_global("out", R * C * 8);

  Function& f = m.add_function("main", 0, "hotspot_openmp.cpp");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(318);
  Reg t = b.const_(g_t);
  Reg p = b.const_(g_p);
  Reg o = b.const_(g_o);
  Reg n = b.const_(R * C);
  Reg creg = b.const_(C);
  Reg stepsr = b.const_(steps);
  b.counted_loop(0, stepsr, 1, [&](Reg) {
    b.counted_loop(0, n, 1, [&](Reg idx) {
      Reg r = b.div(idx, creg);
      Reg c = b.rem(idx, creg);
      (void)r;
      (void)c;
      // Neighbours with modulo clamping (the "B" non-affine bounds).
      Reg up = b.addi(idx, -C);
      Reg upw = b.rem(b.add(up, n), n);
      Reg dn = b.addi(idx, C);
      Reg dnw = b.rem(dn, n);
      Reg lf = b.addi(idx, -1);
      Reg lfw = b.rem(b.add(lf, n), n);
      Reg rt = b.addi(idx, 1);
      Reg rtw = b.rem(rt, n);
      Reg center = b.load(elem_ptr(b, t, idx));
      Reg vu = b.load(elem_ptr(b, t, upw));
      Reg vd = b.load(elem_ptr(b, t, dnw));
      Reg vl = b.load(elem_ptr(b, t, lfw));
      Reg vr = b.load(elem_ptr(b, t, rtw));
      Reg pw = b.load(elem_ptr(b, p, idx));
      Reg s1 = b.fadd(vu, vd);
      Reg s2 = b.fadd(vl, vr);
      Reg s3 = b.fadd(s1, s2);
      Reg four = b.fconst(4.0);
      Reg c4 = b.fmul(center, four);
      Reg lap = b.fsub(s3, c4);
      Reg k = b.fconst(0.05);
      Reg dlt = b.fmul(k, lap);
      Reg dp = b.fadd(dlt, pw);
      Reg nv = b.fadd(center, dp);
      b.store(elem_ptr(b, o, idx), nv);
    });
    // swap: copy out -> temp
    b.counted_loop(0, n, 1, [&](Reg idx) {
      Reg x = b.load(elem_ptr(b, o, idx));
      b.store(elem_ptr(b, t, idx), x);
    });
  });
  Reg acc = b.const_(0);
  b.counted_loop(0, n, 1, [&](Reg idx) {
    Reg x = b.load(elem_ptr(b, t, idx));
    b.xor_(acc, x, acc);
  });
  b.ret(acc);
  return w;
}

// ---- hotspot3D ---------------------------------------------------------
// The 3-D version indexes arrays properly: a clean, fully affine interior
// stencil (99% %Aff in the paper).
Workload make_hotspot3d() {
  Workload w;
  w.name = "hotspot3D";
  w.ld_src = 4;
  w.region_hint = "3D.c:261";
  w.polly_reasons = "BF";

  Module& m = w.module;
  const i64 X = 8, Y = 8, Z = 8, steps = 2;
  // The grid dimensions live in memory (argv/file in real Rodinia): the
  // runtime values are constant — POLY-PROF folds everything affinely —
  // but a static analyzer sees loads feeding the bounds ('B') and the
  // address arithmetic ('F').
  i64 g_dims = m.add_global_init("dims3", {X, Y, Z});
  i64 g_t = m.add_global_init(
      "temp3", random_doubles(static_cast<std::size_t>(X * Y * Z), 81));
  i64 g_p = m.add_global_init(
      "power3", random_doubles(static_cast<std::size_t>(X * Y * Z), 82));
  i64 g_o = m.add_global("out3", X * Y * Z * 8);

  Function& f = m.add_function("main", 0, "3D.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(261);
  Reg dims = b.const_(g_dims);
  Reg yreg = b.load(dims, 8);
  Reg zreg = b.load(dims, 16);
  Reg t = b.const_(g_t);
  Reg p = b.const_(g_p);
  Reg o = b.const_(g_o);
  Reg stepsr = b.const_(steps);
  Reg one = b.const_(1);
  Reg xe = b.addi(b.load(dims, 0), -1);
  Reg ye = b.sub(yreg, one);
  Reg ze = b.sub(zreg, one);
  // &A[(i*Y + j)*Z + k] with Y, Z as runtime registers.
  auto ptr3 = [&](Reg base, Reg i, Reg j, Reg k) {
    Reg iy = b.mul(i, yreg);
    Reg iyj = b.add(iy, j);
    Reg iz = b.mul(iyj, zreg);
    Reg idx = b.add(iz, k);
    Reg off = b.muli(idx, 8);
    return b.add(base, off);
  };
  b.counted_loop(0, stepsr, 1, [&](Reg) {
    b.counted_loop(1, xe, 1, [&](Reg i) {
      b.counted_loop(1, ye, 1, [&](Reg j) {
        b.counted_loop(1, ze, 1, [&](Reg k) {
          Reg ctr = ptr3(t, i, j, k);
          Reg c0 = b.load(ctr);
          Reg v1 = b.load(ctr, 8);
          Reg v2 = b.load(ctr, -8);
          Reg v3 = b.load(ctr, Z * 8);
          Reg v4 = b.load(ctr, -Z * 8);
          Reg v5 = b.load(ctr, Y * Z * 8);
          Reg v6 = b.load(ctr, -Y * Z * 8);
          Reg pw = b.load(ptr3(p, i, j, k));
          Reg s1 = b.fadd(v1, v2);
          Reg s2 = b.fadd(v3, v4);
          Reg s3 = b.fadd(v5, v6);
          Reg s4 = b.fadd(s1, s2);
          Reg s5 = b.fadd(s3, s4);
          Reg six = b.fconst(6.0);
          Reg cs = b.fmul(c0, six);
          Reg lap = b.fsub(s5, cs);
          Reg k2 = b.fconst(0.02);
          Reg d = b.fmul(k2, lap);
          Reg dp = b.fadd(d, pw);
          Reg nv = b.fadd(c0, dp);
          b.store(ptr3(o, i, j, k), nv);
        });
      });
    });
    b.counted_loop(1, xe, 1, [&](Reg i) {
      b.counted_loop(1, ye, 1, [&](Reg j) {
        b.counted_loop(1, ze, 1, [&](Reg k) {
          Reg x = b.load(ptr3(o, i, j, k));
          b.store(ptr3(t, i, j, k), x);
        });
      });
    });
  });
  Reg acc = b.const_(0);
  Reg n = b.const_(X * Y * Z);
  b.counted_loop(0, n, 1, [&](Reg idx) {
    Reg x = b.load(elem_ptr(b, t, idx));
    b.xor_(acc, x, acc);
  });
  b.ret(acc);
  return w;
}

}  // namespace

Workload make_rodinia_a(const std::string& name) {
  if (name == "bfs") return make_bfs();
  if (name == "b+tree") return make_btree();
  if (name == "cfd") return make_cfd();
  if (name == "heartwall") return make_heartwall();
  if (name == "hotspot") return make_hotspot();
  if (name == "hotspot3D") return make_hotspot3d();
  fatal("unknown rodinia_a workload: " + name);
}

}  // namespace pp::workloads
