// Mini-Rodinia, part 3: nw, particlefilter, pathfinder, srad_v1, srad_v2,
// streamcluster.
#include "workloads/util.hpp"
#include "workloads/workloads.hpp"

namespace pp::workloads {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

namespace {

// ---- nw ----------------------------------------------------------------
// Needleman-Wunsch sequence alignment: the classic wavefront DP with
// dependences (1,0), (0,1), (1,1) — fully affine (99% %Aff), tilable only
// with skewing (the paper reports skew = Y).
Workload make_nw() {
  Workload w;
  w.name = "nw";
  w.ld_src = 4;
  w.region_hint = "needle.cpp:308";
  w.polly_reasons = "RF";

  Module& m = w.module;
  const i64 N = 24;
  i64 g_ref = m.add_global_init(
      "ref", random_ints(static_cast<std::size_t>(N * N), -3, 3, 151));
  i64 g_mat = m.add_global("matrix", (N + 1) * (N + 1) * 8);

  Function& f = m.add_function("main", 0, "needle.cpp");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(300);
  Reg ref = b.const_(g_ref);
  Reg mat = b.const_(g_mat);
  Reg n = b.const_(N);
  Reg np1 = b.const_(N + 1);
  Reg penalty = b.const_(-1);
  // Boundary init.
  b.counted_loop(0, np1, 1, [&](Reg i) {
    Reg v = b.mul(i, penalty);
    b.store(elem_ptr2(b, mat, i, N + 1, b.const_(0)), v);
    b.store(elem_ptr2(b, mat, b.const_(0), N + 1, i), v);
  });
  b.set_line(308);
  b.counted_loop(1, np1, 1, [&](Reg i) {
    b.counted_loop(1, np1, 1, [&](Reg j) {
      Reg im1 = b.addi(i, -1);
      Reg jm1 = b.addi(j, -1);
      Reg diag = b.load(elem_ptr2(b, mat, im1, N + 1, jm1));
      Reg up = b.load(elem_ptr2(b, mat, im1, N + 1, j));
      Reg lf = b.load(elem_ptr2(b, mat, i, N + 1, jm1));
      Reg rv = b.load(elem_ptr2(b, ref, im1, N, jm1));
      Reg cand1 = b.add(diag, rv);
      Reg cand2 = b.add(up, penalty);
      Reg cand3 = b.add(lf, penalty);
      // max of the three via branches.
      Reg best = b.fresh();
      b.mov(cand1, best);
      Reg lt2 = b.cmp(Op::kCmpLt, best, cand2);
      int t2 = b.make_block();
      int n2 = b.make_block();
      b.br_cond(lt2, t2, n2);
      b.set_block(t2);
      b.mov(cand2, best);
      b.br(n2);
      b.set_block(n2);
      Reg lt3 = b.cmp(Op::kCmpLt, best, cand3);
      int t3 = b.make_block();
      int n3 = b.make_block();
      b.br_cond(lt3, t3, n3);
      b.set_block(t3);
      b.mov(cand3, best);
      b.br(n3);
      b.set_block(n3);
      b.store(elem_ptr2(b, mat, i, N + 1, j), best);
    });
  });
  Reg result = b.load(elem_ptr2(b, mat, n, N + 1, n));
  b.ret(result);
  return w;
}

// ---- particlefilter ----------------------------------------------------
// Propagate/weight loops are affine; the resampling step does a
// data-dependent scan per particle (the paper reports 27% %Aff with the
// hot region in the sequential resampler).
Workload make_particlefilter() {
  Workload w;
  w.name = "particlefilter";
  w.ld_src = 3;
  w.region_hint = "ex_particle_seq.c:593";
  w.polly_reasons = "CF";

  Module& m = w.module;
  const i64 npart = 32, steps = 2;
  i64 g_x = m.add_global_init("xs", random_doubles(static_cast<std::size_t>(npart), 161));
  i64 g_w = m.add_global_init("ws", random_doubles(static_cast<std::size_t>(npart), 162));
  i64 g_cdf = m.add_global("cdf", npart * 8);
  // Resampling thresholds spread over the CDF's actual range so the scan
  // depth is genuinely data dependent (otherwise it degenerates to j = 0).
  i64 g_u = m.add_global_init("us", [&] {
    Lcg rng(163);
    std::vector<i64> out(static_cast<std::size_t>(npart));
    for (auto& wbits : out) {
      double d = static_cast<double>(rng.range(0, 1200)) / 100.0;
      __builtin_memcpy(&wbits, &d, sizeof wbits);
    }
    return out;
  }());
  i64 g_nx = m.add_global("new_xs", npart * 8);

  Function& f = m.add_function("main", 0, "ex_particle_seq.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg xs = b.const_(g_x);
  Reg ws = b.const_(g_w);
  Reg cdf = b.const_(g_cdf);
  Reg us = b.const_(g_u);
  Reg nxs = b.const_(g_nx);
  Reg np = b.const_(npart);
  Reg st = b.const_(steps);
  b.counted_loop(0, st, 1, [&](Reg) {
    // Propagate + weight (affine).
    b.set_line(420);
    b.counted_loop(0, np, 1, [&](Reg i) {
      Reg x = b.load(elem_ptr(b, xs, i));
      Reg c = b.fconst(1.01);
      Reg nx = b.fmul(x, c);
      b.store(elem_ptr(b, xs, i), nx);
      Reg ww = b.load(elem_ptr(b, ws, i));
      Reg w2 = b.fmul(ww, nx);
      b.store(elem_ptr(b, ws, i), w2);
    });
    // Prefix-sum CDF (affine, sequential dep).
    Reg run = b.fconst(0.0);
    b.counted_loop(0, np, 1, [&](Reg i) {
      Reg ww = b.load(elem_ptr(b, ws, i));
      b.fadd(run, ww, run);
      b.store(elem_ptr(b, cdf, i), run);
    });
    // Resample: for each u, scan the CDF until it exceeds u (the
    // data-dependent, non-affine part the paper points at).
    b.set_line(593);
    b.counted_loop(0, np, 1, [&](Reg i) {
      Reg u = b.load(elem_ptr(b, us, i));
      Reg j = b.fresh();
      Reg zero = b.const_(0);
      b.mov(zero, j);
      int h = b.make_block();
      int body = b.make_block();
      int found = b.make_block();
      int cont = b.make_block();
      int x = b.make_block();
      b.br(h);
      b.set_block(h);
      Reg in_range = b.cmp(Op::kCmpLt, j, np);
      b.br_cond(in_range, body, x);
      b.set_block(body);
      Reg cv = b.load(elem_ptr(b, cdf, j));
      Reg diff = b.fsub(cv, u);
      Reg di = b.f2i(diff);
      Reg pos = b.cmp(Op::kCmpGe, di, zero);
      b.br_cond(pos, found, cont);
      b.set_block(cont);
      b.addi(j, 1, j);
      b.br(h);
      b.set_block(found);
      b.br(x);
      b.set_block(x);
      Reg clamped = b.fresh();
      b.mov(j, clamped);
      Reg over = b.cmp(Op::kCmpGe, clamped, np);
      int fix = b.make_block();
      int ok = b.make_block();
      b.br_cond(over, fix, ok);
      b.set_block(fix);
      Reg last = b.addi(np, -1);
      b.mov(last, clamped);
      b.br(ok);
      b.set_block(ok);
      Reg xv = b.load(elem_ptr(b, xs, clamped));  // indirect gather
      b.store(elem_ptr(b, nxs, i), xv);
    });
  });
  Reg acc = b.const_(0);
  b.counted_loop(0, np, 1, [&](Reg i) {
    Reg v = b.load(elem_ptr(b, nxs, i));
    b.xor_(acc, v, acc);
  });
  b.ret(acc);
  return w;
}

// ---- pathfinder --------------------------------------------------------
// Row-by-row DP: dst[j] = src[min-of-3-neighbours] + wall[r][j]. Accesses
// are affine; the min is data-dependent branching (67% %Aff, 'BP' Polly
// reasons: non-affine conditionals + variant base pointers from the
// row-swap).
Workload make_pathfinder() {
  Workload w;
  w.name = "pathfinder";
  w.ld_src = 2;
  w.region_hint = "pathfinder.cpp:99";
  w.polly_reasons = "BP";

  Module& m = w.module;
  const i64 rows = 12, cols = 32;
  i64 g_wall = m.add_global_init(
      "wall", random_ints(static_cast<std::size_t>(rows * cols), 0, 9, 171));
  i64 g_a = m.add_global("bufA", cols * 8);
  i64 g_b = m.add_global("bufB", cols * 8);

  Function& f = m.add_function("main", 0, "pathfinder.cpp");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(90);
  Reg wall = b.const_(g_wall);
  Reg bufa = b.const_(g_a);
  Reg bufb = b.const_(g_b);
  Reg colsr = b.const_(cols);
  Reg rowsr = b.const_(rows);
  // Init row 0.
  b.counted_loop(0, colsr, 1, [&](Reg j) {
    Reg v = b.load(elem_ptr(b, wall, j));
    b.store(elem_ptr(b, bufa, j), v);
  });
  b.set_line(99);
  // src/dst pointers swap per row (the 'P' reason: base pointer not loop
  // invariant).
  Reg src = b.fresh();
  Reg dst = b.fresh();
  b.mov(bufa, src);
  b.mov(bufb, dst);
  b.counted_loop(1, rowsr, 1, [&](Reg r) {
    b.counted_loop(0, colsr, 1, [&](Reg j) {
      Reg best = b.load(elem_ptr(b, src, j));
      // left neighbour
      Reg zero = b.const_(0);
      Reg has_l = b.cmp(Op::kCmpGt, j, zero);
      int tl = b.make_block();
      int nl = b.make_block();
      b.br_cond(has_l, tl, nl);
      b.set_block(tl);
      Reg jm1 = b.addi(j, -1);
      Reg lv = b.load(elem_ptr(b, src, jm1));
      Reg ltl = b.cmp(Op::kCmpLt, lv, best);
      int take = b.make_block();
      b.br_cond(ltl, take, nl);
      b.set_block(take);
      b.mov(lv, best);
      b.br(nl);
      b.set_block(nl);
      // right neighbour
      Reg cm1 = b.addi(colsr, -1);
      Reg has_r = b.cmp(Op::kCmpLt, j, cm1);
      int tr = b.make_block();
      int nr = b.make_block();
      b.br_cond(has_r, tr, nr);
      b.set_block(tr);
      Reg jp1 = b.addi(j, 1);
      Reg rv = b.load(elem_ptr(b, src, jp1));
      Reg ltr = b.cmp(Op::kCmpLt, rv, best);
      int take2 = b.make_block();
      b.br_cond(ltr, take2, nr);
      b.set_block(take2);
      b.mov(rv, best);
      b.br(nr);
      b.set_block(nr);
      Reg wv = b.load(elem_ptr2(b, wall, r, cols, j));
      Reg nv = b.add(best, wv);
      b.store(elem_ptr(b, dst, j), nv);
    });
    // swap src/dst
    Reg tmp = b.fresh();
    b.mov(src, tmp);
    b.mov(dst, src);
    b.mov(tmp, dst);
  });
  Reg acc = b.const_(0);
  b.counted_loop(0, colsr, 1, [&](Reg j) {
    Reg v = b.load(elem_ptr(b, src, j));
    b.add(acc, v, acc);
  });
  b.ret(acc);
  return w;
}

// ---- srad --------------------------------------------------------------
// Speckle-reducing anisotropic diffusion: a global reduction followed by
// two 2-D stencil sweeps. v1 splits the stages into functions (the
// interprocedural variant); v2 is single-function. Both ~99/98% affine.
void emit_srad_body(Module&, Builder& b, i64 g_img, i64 g_c, i64 H,
                    i64 W) {
  Reg img = b.const_(g_img);
  Reg cof = b.const_(g_c);
  // Reduction: mean of image.
  Reg sum = b.fconst(0.0);
  Reg n = b.const_(H * W);
  b.counted_loop(0, n, 1, [&](Reg i) {
    Reg v = b.load(elem_ptr(b, img, i));
    b.fadd(sum, v, sum);
  });
  // Diffusion coefficient sweep (interior).
  Reg he = b.const_(H - 1);
  Reg we = b.const_(W - 1);
  b.counted_loop(1, he, 1, [&](Reg i) {
    b.counted_loop(1, we, 1, [&](Reg j) {
      Reg ctr = elem_ptr2(b, img, i, W, j);
      Reg c0 = b.load(ctr);
      Reg up = b.load(ctr, -W * 8);
      Reg dn = b.load(ctr, W * 8);
      Reg lf = b.load(ctr, -8);
      Reg rt = b.load(ctr, 8);
      Reg s1 = b.fadd(up, dn);
      Reg s2 = b.fadd(lf, rt);
      Reg s3 = b.fadd(s1, s2);
      Reg four = b.fconst(4.0);
      Reg c4 = b.fmul(c0, four);
      Reg g = b.fsub(s3, c4);
      Reg gn = b.fmul(g, g);
      b.store(elem_ptr2(b, cof, i, W, j), gn);
    });
  });
  // Update sweep.
  b.counted_loop(1, he, 1, [&](Reg i) {
    b.counted_loop(1, we, 1, [&](Reg j) {
      Reg cptr = elem_ptr2(b, cof, i, W, j);
      Reg cv = b.load(cptr);
      Reg iptr = elem_ptr2(b, img, i, W, j);
      Reg iv = b.load(iptr);
      Reg lambda = b.fconst(0.01);
      Reg d = b.fmul(lambda, cv);
      Reg nv = b.fadd(iv, d);
      b.store(iptr, nv);
    });
  });
  (void)sum;
}

Workload make_srad_v1() {
  Workload w;
  w.name = "srad_v1";
  w.ld_src = 3;
  w.region_hint = "main.c:241";
  w.polly_reasons = "RF";

  Module& m = w.module;
  const i64 H = 12, W = 16, iters = 2;
  i64 g_img = m.add_global_init(
      "image1", random_doubles(static_cast<std::size_t>(H * W), 181));
  i64 g_c = m.add_global("coef1", H * W * 8);

  // v1 factors the sweep into a function called per iteration.
  Function& sweep = m.add_function("srad_sweep", 0, "main.c");
  {
    Builder b(m, sweep);
    b.set_block(b.make_block());
    b.set_line(241);
    emit_srad_body(m, b, g_img, g_c, H, W);
    b.ret();
  }
  Function& f = m.add_function("main", 0, "main.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg it = b.const_(iters);
  b.counted_loop(0, it, 1, [&](Reg) { b.call(sweep, {}); });
  Reg img = b.const_(g_img);
  Reg acc = b.const_(0);
  Reg n = b.const_(H * W);
  b.counted_loop(0, n, 1, [&](Reg i) {
    Reg v = b.load(elem_ptr(b, img, i));
    b.xor_(acc, v, acc);
  });
  b.ret(acc);
  return w;
}

Workload make_srad_v2() {
  Workload w;
  w.name = "srad_v2";
  w.ld_src = 3;
  w.region_hint = "srad.cpp:114";
  w.polly_reasons = "RF";

  Module& m = w.module;
  const i64 H = 12, W = 16, iters = 2;
  i64 g_dims = m.add_global_init("srad_dims", {H, W});
  i64 g_img = m.add_global_init(
      "image2", random_doubles(static_cast<std::size_t>(H * W), 191));
  i64 g_c = m.add_global("coef2", H * W * 8);

  // Helper the hot loop calls per iteration (the paper's 'R' reason).
  Function& scale = m.add_function("srad_scale", 1, "srad.cpp");
  {
    Builder b(m, scale);
    b.set_block(b.make_block());
    Reg k = b.fconst(0.98);
    Reg r = b.fmul(0, k);
    b.ret(r);
  }

  Function& f = m.add_function("main", 0, "srad.cpp");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(114);
  Reg it = b.const_(iters);
  b.counted_loop(0, it, 1, [&](Reg) {
    emit_srad_body(m, b, g_img, g_c, H, W);
    // Normalization pass: the image width comes from memory (argv in real
    // Rodinia) and each element passes through a helper call — dynamically
    // affine, statically 'R'+'F'.
    Reg dims = b.const_(g_dims);
    Reg wrt = b.load(dims, 8);
    Reg hrt = b.load(dims, 0);
    Reg total = b.mul(hrt, wrt);
    Reg img = b.const_(g_img);
    b.counted_loop(0, total, 1, [&](Reg i) {
      Reg off = b.muli(i, 8);
      Reg ptr = b.add(img, off);
      Reg v = b.load(ptr);
      Reg nv = b.call(scale, {v}, true);
      b.store(ptr, nv);
    });
  });
  Reg img = b.const_(g_img);
  Reg acc = b.const_(0);
  Reg n = b.const_(H * W);
  b.counted_loop(0, n, 1, [&](Reg i) {
    Reg v = b.load(elem_ptr(b, img, i));
    b.xor_(acc, v, acc);
  });
  b.ret(acc);
  return w;
}

// ---- streamcluster -----------------------------------------------------
// Online clustering: many distinct distance/assign/cost phases. The code
// is largely affine (97% %Aff) but folds into several hundred statements —
// the scale that made the paper's scheduler run out of memory. We
// reproduce the statement-count blowup with a long chain of distinct
// kernels (the Table 5 bench prints "-" for it past a statement budget,
// like the paper's missing row).
Workload make_streamcluster() {
  Workload w;
  w.name = "streamcluster";
  w.ld_src = 6;
  w.region_hint = "streamcluster_omp.cpp:1269";
  w.polly_reasons = "RCBFAP";

  Module& m = w.module;
  const i64 npts = 24, dims = 6, ncent = 4, phases = 12;
  i64 g_p = m.add_global_init(
      "scpoints", random_doubles(static_cast<std::size_t>(npts * dims), 201));
  i64 g_c = m.add_global_init(
      "sccenters", random_doubles(static_cast<std::size_t>(ncent * dims), 202));
  i64 g_cost = m.add_global("sccost", npts * 8);

  // dist(p, q): a two-pointer helper with an early exit — statically this
  // is 'R' at every call site, 'C' (two returns) and 'A' (two pointer
  // arguments) inside.
  Function& dist2 = m.add_function("sc_dist", 2, "streamcluster_omp.cpp");
  {
    Builder b(m, dist2);
    int entry = b.make_block();
    int same = b.make_block();
    int diff = b.make_block();
    b.set_block(entry);
    Reg eq = b.cmp(Op::kCmpEq, 0, 1);
    b.br_cond(eq, same, diff);
    b.set_block(same);
    Reg z = b.fconst(0.0);
    b.ret(z);
    b.set_block(diff);
    Reg a = b.load(0);
    Reg c = b.load(1);
    Reg d = b.fsub(a, c);
    Reg d2 = b.fmul(d, d);
    b.ret(d2);
  }

  Function& f = m.add_function("main", 0, "streamcluster_omp.cpp");
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(1269);
  Reg pts = b.const_(g_p);
  Reg ctr = b.const_(g_c);
  Reg cost = b.const_(g_cost);
  Reg np = b.const_(npts);
  Reg nc = b.const_(ncent);
  Reg nd = b.const_(dims);
  // pgain-style shuffle: data-dependent branch ('B') on a loaded weight,
  // pointer swap inside the loop ('P'), and helper calls ('R').
  {
    Reg src = b.fresh();
    Reg dst = b.fresh();
    b.mov(pts, src);
    b.mov(ctr, dst);
    b.counted_loop(0, np, 1, [&](Reg i) {
      Reg off = b.muli(i, 8);
      Reg p1 = b.add(src, off);
      Reg v = b.load(p1);
      Reg thr = b.fconst(0.5);
      Reg dlt = b.fsub(v, thr);
      Reg di = b.f2i(dlt);
      Reg zero = b.const_(0);
      Reg big = b.cmp(Op::kCmpGt, di, zero);
      int swap = b.make_block();
      int keep = b.make_block();
      b.br_cond(big, swap, keep);
      b.set_block(swap);
      Reg tmp = b.fresh();
      b.mov(src, tmp);
      b.mov(dst, src);
      b.mov(tmp, dst);
      b.br(keep);
      b.set_block(keep);
      b.call(dist2, {p1, dst}, true);
    });
  }
  // Each phase is a structurally distinct pair of nests (different blocks
  // => different statements), emulating pgain/shuffle/cost phases.
  for (i64 ph = 0; ph < phases; ++ph) {
    b.set_line(1269 + static_cast<int>(ph));
    b.counted_loop(0, np, 1, [&](Reg i) {
      b.counted_loop(0, nc, 1, [&](Reg c) {
        Reg d2 = b.fconst(0.0);
        b.counted_loop(0, nd, 1, [&](Reg d) {
          Reg pv = b.load(elem_ptr2(b, pts, i, dims, d));
          Reg cv = b.load(elem_ptr2(b, ctr, c, dims, d));
          Reg df = b.fsub(pv, cv);
          Reg sq = b.fmul(df, df);
          b.fadd(d2, sq, d2);
        });
        Reg cptr = elem_ptr(b, cost, i);
        Reg old = b.load(cptr);
        Reg nv = b.fadd(old, d2);
        b.store(cptr, nv);
      });
    });
  }
  Reg acc = b.const_(0);
  b.counted_loop(0, np, 1, [&](Reg i) {
    Reg v = b.load(elem_ptr(b, cost, i));
    b.xor_(acc, v, acc);
  });
  b.ret(acc);
  return w;
}

}  // namespace

Workload make_rodinia_c(const std::string& name) {
  if (name == "nw") return make_nw();
  if (name == "particlefilter") return make_particlefilter();
  if (name == "pathfinder") return make_pathfinder();
  if (name == "srad_v1") return make_srad_v1();
  if (name == "srad_v2") return make_srad_v2();
  if (name == "streamcluster") return make_streamcluster();
  fatal("unknown rodinia_c workload: " + name);
}

}  // namespace pp::workloads
