// pp::service — profiling as a service. A long-running in-process Server
// accepts profiling jobs (module + workload + PipelineOptions) on a
// bounded queue, schedules them across a fixed set of executor threads
// that all share ONE work-stealing ThreadPool (concurrent jobs
// inter-schedule their stage fan-outs on the same lanes), and returns a
// Job handle the client waits on. Robustness is the contract:
//
//  * cancellation — every job owns a support::CancelToken plumbed through
//    core::Pipeline::run; Job::cancel() or an expired deadline stops the
//    job at its next checkpoint with a diagnosed partial report;
//  * deadlines — JobRequest::deadline_ms arms the token's deadline and a
//    watchdog thread fires tokens of jobs wedged between checkpoints;
//  * retries — transient failure classes (chaos-injected faults,
//    wall-budget exhaustion) are retried with exponential backoff up to
//    JobRequest::max_attempts; retries of a chaos_transient job drop the
//    chaos options, modelling a fault that does not recur;
//  * admission control — a bounded queue sheds jobs when full; between
//    the high and low watermarks new jobs are admitted DOWNGRADED
//    (folder max_pieces collapsed to 1, soundness oracle disabled), with
//    the downgrade reported deterministically in the outcome;
//  * result cache — completed clean runs are cached by an FNV-1a
//    fingerprint of module + workload + options (thread count excluded:
//    reports are byte-identical at any thread count), so identical
//    resubmissions are served without re-profiling;
//  * observability — a service-level pp::obs session counts submissions,
//    sheds, retries, cancels and queue depth; observed jobs additionally
//    produce a per-job run manifest (JobOutcome::manifest).
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/obs.hpp"
#include "support/cancel.hpp"
#include "support/thread_pool.hpp"

namespace pp::service {

/// One profiling job. The module must outlive the job's completion.
struct JobRequest {
  const ir::Module* module = nullptr;
  std::string name = "job";  ///< workload label (manifest + outcome lines)
  core::PipelineOptions pipeline;
  /// Report rendering threshold (ReportOptions::min_fraction).
  double min_fraction = 0.05;
  /// Whole-job deadline in milliseconds, retries included (0 = none).
  u64 deadline_ms = 0;
  /// Total attempts for transient failures (1 = no retry).
  int max_attempts = 1;
  /// The job's chaos faults model a transient external failure: retry
  /// attempts run with chaos stripped, so a retried job can complete
  /// clean. Without this flag a chaos job is retried as-is (the fault is
  /// deterministic and recurs — the service still stops at max_attempts).
  bool chaos_transient = false;
};

enum class JobState : std::uint8_t {
  kQueued,           ///< admitted, waiting for an executor
  kRunning,          ///< on an executor
  kCompleted,        ///< report delivered (possibly a diagnosed partial)
  kCancelled,        ///< stopped by Job::cancel()
  kDeadlineExpired,  ///< stopped by the deadline
  kShed,             ///< rejected at admission (queue full / shutdown)
};
const char* job_state_name(JobState s);

/// Everything the service delivers for one job.
struct JobOutcome {
  JobState state = JobState::kQueued;
  bool from_cache = false;  ///< served from the result cache, not re-run
  bool downgraded = false;  ///< admitted under overload with reduced fidelity
  bool truncated = false;   ///< the delivered report is a partial profile
  int attempts = 0;         ///< pipeline runs consumed (0: never ran)
  std::string report;       ///< full_report text ("" for shed jobs)
  u64 report_fingerprint = 0;  ///< FNV-1a of `report` (0 when empty)
  /// One deterministic line describing how the job ended — queue-full
  /// sheds, overload downgrades and cancellations all surface here.
  std::string outcome_line;
  /// Per-job pp::obs run manifest (observed jobs only; "" otherwise).
  std::string manifest;
};

/// Client handle: wait()/done()/cancel(). Created only by Server::submit.
class Job {
 public:
  /// Block until the job reaches a terminal state.
  const JobOutcome& wait();
  bool done() const;
  /// Request cancellation (first checkpoint stops the job). Idempotent;
  /// a no-op once the job is terminal.
  void cancel() { token_.cancel(); }

  support::CancelToken& token() { return token_; }
  const JobRequest& request() const { return req_; }

 private:
  friend class Server;
  explicit Job(JobRequest req) : req_(std::move(req)) {}

  JobRequest req_;
  support::CancelToken token_;
  u64 fp_ = 0;               ///< cache fingerprint (set at admission)
  bool downgraded_ = false;  ///< admitted while the server was overloaded
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  JobOutcome outcome_;
};
using JobHandle = std::shared_ptr<Job>;

struct ServerOptions {
  /// Executor threads = concurrently RUNNING jobs. Their pipelines share
  /// one ThreadPool, so this bounds oversubscription, not lane count.
  unsigned executors = 2;
  /// Worker lanes of the shared pool (0 = hardware_concurrency).
  unsigned pool_threads = 0;
  /// Admission bound: submissions finding this many QUEUED jobs are shed.
  std::size_t queue_capacity = 32;
  /// Overload hysteresis: entering a queue depth >= high_watermark turns
  /// downgrade mode on; it stays on until the queue drains below
  /// low_watermark. Downgraded admissions run with fold.max_pieces = 1
  /// (one over-approximate piece per stream) and the oracle disabled.
  std::size_t high_watermark = 24;
  std::size_t low_watermark = 8;
  /// Serve identical (module, workload, options) resubmissions from cache.
  bool cache = true;
  /// Base backoff before retry attempt k is 2^(k-1) * this (interruptible
  /// by cancel/deadline).
  u64 retry_backoff_ms = 1;
  /// Observe every job (per-job obs session + manifest) — independent of
  /// the per-job PipelineOptions::observe flag, which also works.
  bool observe_jobs = false;
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();  ///< drains the queue, then joins all threads

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit a job. Never blocks on profiling work: cache hits and shed
  /// rejections complete the returned handle immediately.
  JobHandle submit(JobRequest req);

  /// Stop accepting jobs and wait for queued+running ones to finish.
  /// With `cancel_pending`, queued and running jobs are cancelled first.
  void shutdown(bool cancel_pending = false);

  /// Deterministic service counters (snapshot).
  struct Stats {
    u64 submitted = 0;         ///< admitted jobs (cache hits + sheds excluded)
    u64 completed = 0;         ///< jobs that reached kCompleted
    u64 cancelled = 0;
    u64 deadline_expired = 0;
    u64 shed = 0;
    u64 downgraded = 0;
    u64 retries = 0;           ///< extra attempts beyond the first
    u64 cache_hits = 0;
    std::size_t queue_depth = 0;
    std::size_t max_queue_depth = 0;
  };
  Stats stats() const;

  /// Service-level observability session ("service.*" counters, one
  /// "service:job" span per executed job).
  const obs::Session& observability() const { return obs_; }

  /// FNV-1a fingerprint of a job's module + workload + options — the
  /// result-cache key. Thread count is excluded (reports are
  /// byte-identical at any thread count); budgets, chaos and fold/ddg
  /// options are included (they change the report).
  static u64 fingerprint(const JobRequest& req);

 private:
  struct CacheEntry {
    std::string report;
    u64 report_fingerprint = 0;
    int attempts = 0;
  };

  void executor_loop();
  void watchdog_loop();
  void run_job(const JobHandle& job);
  void finish(const JobHandle& job, JobOutcome outcome);
  std::string manifest_for(const JobHandle& job, const core::ProfileResult& r,
                           const JobOutcome& out);

  ServerOptions opts_;
  std::shared_ptr<support::ThreadPool> pool_;
  obs::Session obs_{true};

  mutable std::mutex mu_;
  std::condition_variable work_cv_;      ///< executors wait here
  std::condition_variable watchdog_cv_;  ///< watchdog waits here
  std::deque<JobHandle> queue_;
  std::vector<JobHandle> live_;  ///< admitted, not yet terminal (watchdog)
  std::unordered_map<u64, std::shared_ptr<const CacheEntry>> cache_;
  Stats stats_;
  bool overloaded_ = false;
  bool stopping_ = false;

  std::vector<std::thread> executors_;
  std::thread watchdog_;
  std::mutex join_mu_;  ///< serializes concurrent shutdown() calls
};

}  // namespace pp::service
