#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace pp::service {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kDeadlineExpired: return "deadline-expired";
    case JobState::kShed: return "shed";
  }
  return "?";
}

const JobOutcome& Job::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return done_; });
  return outcome_;
}

bool Job::done() const {
  std::lock_guard<std::mutex> lk(mu_);
  return done_;
}

namespace {

std::string hex64(u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Byte-serializer feeding the FNV-1a cache key. Length-prefixed strings
/// and fixed-width little-endian integers: no two distinct (module,
/// options) pairs serialize to the same byte string by construction.
struct FingerprintBuf {
  std::string bytes;

  void u(u64 v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<char>(v >> (8 * i)));
  }
  void s(i64 v) { u(static_cast<u64>(v)); }
  void str(const std::string& v) {
    u(v.size());
    bytes += v;
  }
};

void serialize_module(FingerprintBuf& fp, const ir::Module& m) {
  fp.u(m.functions.size());
  for (const ir::Function& f : m.functions) {
    fp.str(f.name);
    fp.str(f.source_file);
    fp.s(f.num_args);
    fp.s(f.num_regs);
    fp.u(f.blocks.size());
    for (const ir::BasicBlock& bb : f.blocks) {
      fp.u(bb.instrs.size());
      for (const ir::Instr& in : bb.instrs) {
        fp.s(static_cast<i64>(in.op));
        fp.s(in.dst);
        fp.s(in.a);
        fp.s(in.b);
        fp.s(in.imm);
        fp.s(in.imm2);
        fp.u(in.args.size());
        for (ir::Reg r : in.args) fp.s(r);
      }
    }
  }
  fp.u(m.globals.size());
  for (const ir::Global& g : m.globals) {
    fp.str(g.name);
    fp.s(g.address);
    fp.s(g.size_bytes);
    fp.u(g.init_words.size());
    for (i64 w : g.init_words) fp.s(w);
  }
  fp.s(m.data_segment_size);
}

}  // namespace

u64 Server::fingerprint(const JobRequest& req) {
  FingerprintBuf fp;
  if (req.module != nullptr) serialize_module(fp, *req.module);
  const core::PipelineOptions& p = req.pipeline;
  fp.str(req.name);
  fp.str(p.entry);
  fp.u(p.args.size());
  for (i64 a : p.args) fp.s(a);
  fp.u(p.max_steps);
  fp.u(p.ddg.track_anti_output ? 1 : 0);
  fp.u(p.ddg.clamp_instances);
  fp.u(p.fold.count_cap);
  fp.u(p.fold.max_pieces);
  fp.u(p.fold.max_open_chunks);
  fp.u(p.fold.use_octagon ? 1 : 0);
  fp.u(p.fold.stride_runs ? 1 : 0);
  fp.u(p.budget.wall_ms);
  fp.u(p.budget.vm_steps);
  fp.u(p.budget.shadow_pages);
  fp.u(p.budget.coord_pool_words);
  fp.u(p.budget.folder_pieces);
  fp.u(static_cast<u64>(p.chaos.kind));
  fp.u(p.chaos.seed);
  fp.u(p.chaos.min_events);
  fp.u(p.chaos.window);
  fp.u(static_cast<u64>(p.chaos.service));
  fp.u(p.verify_module ? 1 : 0);
  fp.u(p.observe ? 1 : 0);
  // `threads` deliberately excluded: reports are byte-identical at any
  // thread count, so a cache hit across thread counts is sound.
  fp.s(static_cast<i64>(req.min_fraction * 1e9));
  fp.s(req.max_attempts);
  fp.u(req.chaos_transient ? 1 : 0);
  return obs::fnv1a(fp.bytes);
}

Server::Server(ServerOptions opts) : opts_(opts) {
  if (opts_.executors == 0) opts_.executors = 1;
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  opts_.high_watermark = std::min(opts_.high_watermark, opts_.queue_capacity);
  opts_.low_watermark = std::min(opts_.low_watermark, opts_.high_watermark);
  pool_ = std::make_shared<support::ThreadPool>(opts_.pool_threads);
  executors_.reserve(opts_.executors);
  for (unsigned i = 0; i < opts_.executors; ++i)
    executors_.emplace_back([this] { executor_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

Server::~Server() { shutdown(); }

JobHandle Server::submit(JobRequest req) {
  if (opts_.observe_jobs) req.pipeline.observe = true;
  JobHandle job(new Job(std::move(req)));
  JobOutcome immediate;
  bool deliver_now = false;
  bool armed_deadline = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      immediate.state = JobState::kShed;
      immediate.outcome_line = "shed: server shutting down";
      deliver_now = true;
    } else if (job->req_.module == nullptr) {
      immediate.state = JobState::kShed;
      immediate.outcome_line = "shed: request carries no module";
      deliver_now = true;
    } else {
      job->fp_ = fingerprint(job->req_);
      auto it = opts_.cache ? cache_.find(job->fp_) : cache_.end();
      if (opts_.cache && it != cache_.end()) {
        ++stats_.cache_hits;
        obs_.add("service.cache_hits");
        immediate.state = JobState::kCompleted;
        immediate.from_cache = true;
        immediate.attempts = 0;
        immediate.report = it->second->report;
        immediate.report_fingerprint = it->second->report_fingerprint;
        immediate.outcome_line =
            "completed (cache hit, report fingerprint " +
            hex64(it->second->report_fingerprint) + ")";
        deliver_now = true;
      } else if (job->req_.pipeline.chaos.service ==
                 vm::ServiceFault::kQueueFull) {
        immediate.state = JobState::kShed;
        immediate.outcome_line =
            "shed: queue full (chaos-injected admission rejection)";
        deliver_now = true;
      } else if (queue_.size() >= opts_.queue_capacity) {
        immediate.state = JobState::kShed;
        immediate.outcome_line =
            "shed: queue full (depth " + std::to_string(queue_.size()) +
            ", capacity " + std::to_string(opts_.queue_capacity) + ")";
        deliver_now = true;
      } else {
        ++stats_.submitted;
        obs_.add("service.submitted");
        if (queue_.size() + 1 >= opts_.high_watermark) overloaded_ = true;
        job->downgraded_ = overloaded_;
        if (job->downgraded_) {
          ++stats_.downgraded;
          obs_.add("service.downgraded");
        }
        if (job->req_.deadline_ms != 0) {
          job->token_.set_deadline_in_ms(job->req_.deadline_ms);
          armed_deadline = true;
        }
        queue_.push_back(job);
        live_.push_back(job);
        stats_.queue_depth = queue_.size();
        stats_.max_queue_depth =
            std::max(stats_.max_queue_depth, queue_.size());
      }
    }
  }
  if (deliver_now) {
    finish(job, std::move(immediate));
    return job;
  }
  work_cv_.notify_one();
  if (armed_deadline) watchdog_cv_.notify_one();
  return job;
}

void Server::executor_loop() {
  for (;;) {
    JobHandle job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = queue_.front();
      queue_.pop_front();
      stats_.queue_depth = queue_.size();
      if (queue_.size() < opts_.low_watermark) overloaded_ = false;
    }
    run_job(job);
  }
}

void Server::run_job(const JobHandle& job) {
  obs::Span span(&obs_, "service:job");
  obs_.add("service.jobs_run");

  core::PipelineOptions popts = job->req_.pipeline;
  popts.cancel = &job->token_;
  popts.pool = pool_;
  core::ReportOptions ropts;
  ropts.min_fraction = job->req_.min_fraction;
  if (job->downgraded_) {
    // Overload downgrade: one over-approximate piece per stream, no
    // soundness oracle. Still a sound profile, just lower fidelity.
    popts.fold.max_pieces = 1;
    ropts.run_oracle = false;
  }

  JobOutcome out;
  out.downgraded = job->downgraded_;
  int attempt = 0;
  for (;;) {
    if (job->token_.poll()) {
      const bool deadline =
          job->token_.reason() == support::CancelReason::kDeadline;
      out.state = deadline ? JobState::kDeadlineExpired : JobState::kCancelled;
      out.attempts = attempt;
      out.outcome_line = std::string(deadline ? "deadline expired"
                                              : "cancelled") +
                         (attempt == 0 ? " before the job started"
                                       : " while backing off before retry");
      finish(job, std::move(out));
      return;
    }
    ++attempt;
    core::ProfileResult r = core::Pipeline(*job->req_.module).run(popts);
    out.attempts = attempt;
    out.truncated = r.truncated;

    const support::CancelReason reason = job->token_.reason();
    if (reason != support::CancelReason::kNone) {
      // Stopped by the token: terminal, never retried. The partial report
      // is still rendered — degrade-don't-die applies to the service too.
      out.report = core::full_report(r, ropts);
      out.report_fingerprint = obs::fnv1a(out.report);
      out.manifest = manifest_for(job, r, out);
      const bool deadline = reason == support::CancelReason::kDeadline;
      out.state = deadline ? JobState::kDeadlineExpired : JobState::kCancelled;
      out.outcome_line =
          std::string(deadline ? "deadline expired" : "cancelled") +
          " after " + std::to_string(attempt) +
          " attempt(s) — diagnosed partial report delivered";
      finish(job, std::move(out));
      return;
    }

    if (!r.truncated) {
      out.report = core::full_report(r, ropts);
      out.report_fingerprint = obs::fnv1a(out.report);
      out.manifest = manifest_for(job, r, out);
      out.state = JobState::kCompleted;
      out.outcome_line =
          "completed clean after " + std::to_string(attempt) + " attempt(s)" +
          (job->downgraded_
               ? " (downgraded under overload: folder collapsed to one "
                 "piece per stream, oracle disabled)"
               : "");
      const bool chaos_free =
          popts.chaos.kind == vm::FaultKind::kNone &&
          popts.chaos.service == vm::ServiceFault::kNone;
      if (opts_.cache && chaos_free && !job->downgraded_) {
        auto entry = std::make_shared<CacheEntry>();
        entry->report = out.report;
        entry->report_fingerprint = out.report_fingerprint;
        entry->attempts = attempt;
        std::lock_guard<std::mutex> lk(mu_);
        cache_[job->fp_] = std::move(entry);
      }
      finish(job, std::move(out));
      return;
    }

    // Truncated but not cancelled. Chaos faults and wall-budget trips are
    // the transient classes; everything else (step limits, hard resource
    // caps) is deterministic and retrying cannot help.
    const bool transient = popts.chaos.kind != vm::FaultKind::kNone ||
                           popts.chaos.service != vm::ServiceFault::kNone ||
                           popts.budget.wall_ms != 0;
    if (transient && attempt < job->req_.max_attempts) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.retries;
      }
      obs_.add("service.retries");
      if (job->req_.chaos_transient) popts.chaos = vm::ChaosOptions{};
      // Exponential backoff, interruptible at ~1 ms granularity so a
      // cancel or deadline firing mid-backoff is honored promptly.
      const u64 backoff_ms = opts_.retry_backoff_ms << (attempt - 1);
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(backoff_ms);
      while (std::chrono::steady_clock::now() < until &&
             !job->token_.poll())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }

    out.report = core::full_report(r, ropts);
    out.report_fingerprint = obs::fnv1a(out.report);
    out.manifest = manifest_for(job, r, out);
    out.state = JobState::kCompleted;
    out.outcome_line =
        "completed with a diagnosed partial profile (truncated; " +
        std::to_string(attempt) + " attempt(s)" +
        (transient && job->req_.max_attempts > 1 ? ", retries exhausted"
                                                 : "") +
        ")";
    finish(job, std::move(out));
    return;
  }
}

std::string Server::manifest_for(const JobHandle& job,
                                 const core::ProfileResult& r,
                                 const JobOutcome& out) {
  if (r.obs == nullptr) return "";
  obs::Session::ManifestExtra extra;
  extra.workload = job->req_.name;
  extra.threads = static_cast<int>(pool_->workers());
  extra.truncated = r.truncated;
  extra.degraded_statements = r.program.degraded_statements;
  extra.diagnostics = r.diagnostics.size();
  extra.report_fingerprint = hex64(out.report_fingerprint);
  return r.obs->manifest_json(extra);
}

void Server::finish(const JobHandle& job, JobOutcome outcome) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    switch (outcome.state) {
      case JobState::kCompleted:
        if (!outcome.from_cache) {
          ++stats_.completed;
          obs_.add("service.completed");
        }
        break;
      case JobState::kCancelled:
        ++stats_.cancelled;
        obs_.add("service.cancelled");
        break;
      case JobState::kDeadlineExpired:
        ++stats_.deadline_expired;
        obs_.add("service.deadline_expired");
        break;
      case JobState::kShed:
        ++stats_.shed;
        obs_.add("service.shed");
        break;
      default:
        break;
    }
    live_.erase(std::remove(live_.begin(), live_.end(), job), live_.end());
  }
  {
    std::lock_guard<std::mutex> jlk(job->mu_);
    job->outcome_ = std::move(outcome);
    job->done_ = true;
  }
  job->cv_.notify_all();
  watchdog_cv_.notify_one();
}

void Server::watchdog_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // Nearest pending deadline among live jobs whose token has not fired
    // yet (a fired token is out of the watchdog's hands — the running
    // pipeline honors it at its next checkpoint).
    bool have = false;
    std::chrono::steady_clock::time_point nearest{};
    for (const JobHandle& j : live_) {
      if (!j->token_.has_deadline() || j->token_.cancelled()) continue;
      const auto d = j->token_.deadline();
      if (!have || d < nearest) {
        nearest = d;
        have = true;
      }
    }
    if (!have) {
      if (stopping_ && live_.empty()) return;
      watchdog_cv_.wait(lk);
      continue;
    }
    watchdog_cv_.wait_until(lk, nearest);
    const auto now = std::chrono::steady_clock::now();
    for (const JobHandle& j : live_)
      if (j->token_.has_deadline() && !j->token_.cancelled() &&
          j->token_.deadline() <= now) {
        j->token_.expire();
        obs_.add("service.watchdog_expirations", 1,
                 obs::Stability::kTiming);
      }
  }
}

void Server::shutdown(bool cancel_pending) {
  std::vector<JobHandle> to_cancel;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
    if (cancel_pending) to_cancel = live_;
  }
  for (const JobHandle& j : to_cancel) j->token_.cancel();
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  std::lock_guard<std::mutex> jlk(join_mu_);
  for (std::thread& t : executors_)
    if (t.joinable()) t.join();
  if (watchdog_.joinable()) watchdog_.join();
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace pp::service
