#include "fold/folded_ddg.hpp"

#include <algorithm>

namespace pp::fold {

bool scev_candidate(ir::Op op) {
  switch (op) {
    case ir::Op::kConst:
    case ir::Op::kMov:
    case ir::Op::kAdd:
    case ir::Op::kSub:
    case ir::Op::kMul:
    case ir::Op::kAddI:
    case ir::Op::kMulI:
    case ir::Op::kShl:
    case ir::Op::kCmpEq:
    case ir::Op::kCmpNe:
    case ir::Op::kCmpLt:
    case ir::Op::kCmpLe:
    case ir::Op::kCmpGt:
    case ir::Op::kCmpGe:
      return true;
    default:
      return false;
  }
}

const poly::AffineMap* FoldedStatement::affine_access() const {
  if (addresses.pieces().size() != 1) return nullptr;
  const poly::Piece& p = addresses.pieces()[0];
  if (!p.exact) return nullptr;
  return &p.label_fn;
}

std::optional<i64> FoldedStatement::stride_along(std::size_t dim) const {
  const poly::AffineMap* fn = affine_access();
  if (!fn || fn->out_dim() != 1) return std::nullopt;
  if (dim >= fn->in_dim()) return std::nullopt;
  return fn->output(0).coeff(dim);
}

poly::DepRelation FoldedDep::as_relation() const {
  poly::DepRelation r;
  r.src_stmt = src;
  r.dst_stmt = dst;
  for (const auto& p : relation.pieces()) {
    poly::DepPiece dp;
    dp.dst_domain = p.domain;
    dp.src_fn = p.label_fn;
    dp.exact = p.exact;
    dp.observed = p.observed_points;
    r.pieces.push_back(std::move(dp));
  }
  return r;
}

poly::PolySet FoldedDep::must_relation() const {
  poly::PolySet out(relation.dim());
  for (const auto& p : relation.pieces())
    if (p.exact) out.add_piece(p);
  return out;
}

double FoldedDep::must_coverage() const {
  u64 total = relation.total_observed();
  if (total == 0) return 1.0;
  u64 must = 0;
  for (const auto& p : relation.pieces())
    if (p.exact) must += p.observed_points;
  return static_cast<double>(must) / static_cast<double>(total);
}

std::vector<bool> FoldedProgram::affine_flags(bool strict) const {
  // Statements incident to an inexact (or, in strict mode, piecewise)
  // dependence edge lose affinity too.
  std::vector<bool> tainted(statements.size(), false);
  for (const auto& d : deps) {
    bool bad = !d.relation.all_exact() ||
               (strict && d.relation.pieces().size() > 1);
    if (bad) {
      tainted[static_cast<std::size_t>(d.src)] = true;
      tainted[static_cast<std::size_t>(d.dst)] = true;
    }
  }
  std::vector<bool> flags(statements.size(), false);
  for (const auto& s : statements) {
    if (!s.domain_exact) continue;
    if (strict && s.domain.pieces().size() > 1) continue;
    if (tainted[static_cast<std::size_t>(s.meta.id)]) continue;
    if (s.meta.is_memory) {
      // strict: one exact affine access function; extended: an exact
      // piecewise-affine access also counts.
      if (strict && s.affine_access() == nullptr) continue;
      if (!strict && (s.addresses.empty() || !s.addresses.all_exact()))
        continue;
    }
    flags[static_cast<std::size_t>(s.meta.id)] = true;
  }
  return flags;
}

u64 FoldedProgram::fully_affine_ops() const {
  std::vector<bool> flags = affine_flags();
  u64 n = 0;
  for (const auto& s : statements)
    if (flags[static_cast<std::size_t>(s.meta.id)]) n += s.meta.executions;
  return n;
}

FoldingSink::FoldingSink(FolderOptions opts) : opts_(opts) {
  if (opts_.cache == nullptr) opts_.cache = &cache_;
}

void FoldingSink::mark_degraded(const std::set<int>& stmt_ids) {
  degraded_.insert(stmt_ids.begin(), stmt_ids.end());
}

namespace {

/// Force every piece of a folded set over-approximate: the stream behind
/// it is known incomplete, so neither the domains nor the label fits are
/// certified — even when the partial points happened to fold exactly.
void taint_pieces(poly::PolySet& set) {
  for (auto& p : set.pieces()) {
    p.exact = false;
    p.label_exact = false;
  }
}

}  // namespace

void FoldingSink::on_instruction(const ddg::Statement& s,
                                 std::span<const i64> coords, bool has_value,
                                 i64 value, bool has_address, i64 address) {
  if (buffered()) {
    // Parallel mode: defer the (expensive) Folder::add calls to the
    // phase-A fan-out; streaming just appends to flat buffers. Each
    // stream's relative event order is preserved, so the replayed folds
    // are bit-identical to the inline ones.
    auto& b = stmt_buf_[s.id];
    if (!b.dim_set) {
      b.dim = coords.size();
      b.dim_set = true;
    }
    ++b.domain_points;
    b.domain.insert(b.domain.end(), coords.begin(), coords.end());
    if (has_value && scev_candidate(s.op)) {
      b.value.insert(b.value.end(), coords.begin(), coords.end());
      b.value.push_back(value);
    }
    if (has_address) {
      b.address.insert(b.address.end(), coords.begin(), coords.end());
      b.address.push_back(address);
    }
    return;
  }
  auto& streams = stmts_[s.id];
  std::size_t d = coords.size();
  if (!streams.domain)
    streams.domain = std::make_unique<Folder>(d, 0, opts_);
  streams.domain->add(coords, {});
  if (has_value && scev_candidate(s.op)) {
    if (!streams.value)
      streams.value = std::make_unique<Folder>(d, 1, opts_);
    i64 lab[1] = {value};
    streams.value->add(coords, lab);
  }
  if (has_address) {
    if (!streams.address)
      streams.address = std::make_unique<Folder>(d, 1, opts_);
    i64 lab[1] = {address};
    streams.address->add(coords, lab);
  }
}

void FoldingSink::on_dependence(ddg::DepKind kind, int src_stmt,
                                std::span<const i64> src_coords, int dst_stmt,
                                std::span<const i64> dst_coords, int slot) {
  DepKey key{src_stmt, dst_stmt, kind, slot};
  if (buffered()) {
    auto& b = dep_buf_[key];
    if (b.points == 0) {
      b.dst_dim = dst_coords.size();
      b.src_dim = src_coords.size();
    }
    ++b.points;
    b.rows.insert(b.rows.end(), dst_coords.begin(), dst_coords.end());
    b.rows.insert(b.rows.end(), src_coords.begin(), src_coords.end());
    return;
  }
  auto& f = deps_[key];
  if (!f)
    f = std::make_unique<Folder>(dst_coords.size(), src_coords.size(), opts_);
  f->add(dst_coords, src_coords);
}

namespace {

inline i64 wadd(i64 a, i64 b) {
  return static_cast<i64>(static_cast<u64>(a) + static_cast<u64>(b));
}

inline void advance(std::vector<i64>& v, std::span<const i64> stride) {
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = wadd(v[i], stride[i]);
}

}  // namespace

void FoldingSink::on_instruction_run(const InstrRun& r) {
  if (r.n == 0) return;
  const ddg::Statement& s = *r.stmt;
  const bool fold_value = r.has_value && scev_candidate(s.op);
  if (buffered()) {
    auto& b = stmt_buf_[s.id];
    if (!b.dim_set) {
      b.dim = r.coords.size();
      b.dim_set = true;
    }
    b.domain_points += r.n;
    std::vector<i64> coords(r.coords.begin(), r.coords.end());
    i64 value = r.value;
    i64 address = r.address;
    for (u64 t = 0; t < r.n; ++t) {
      if (fold_value && !r.value_affine) value = r.values[t];
      if (r.has_address && !r.address_affine) address = r.addresses[t];
      b.domain.insert(b.domain.end(), coords.begin(), coords.end());
      if (fold_value) {
        b.value.insert(b.value.end(), coords.begin(), coords.end());
        b.value.push_back(value);
      }
      if (r.has_address) {
        b.address.insert(b.address.end(), coords.begin(), coords.end());
        b.address.push_back(address);
      }
      advance(coords, r.coord_stride);
      value = wadd(value, r.value_stride);
      address = wadd(address, r.address_stride);
    }
    return;
  }
  auto& streams = stmts_[s.id];
  const std::size_t d = r.coords.size();
  if (!streams.domain)
    streams.domain = std::make_unique<Folder>(d, 0, opts_);
  streams.domain->add_run(r.coords, {}, r.coord_stride, {}, r.n);
  if (fold_value) {
    if (!streams.value)
      streams.value = std::make_unique<Folder>(d, 1, opts_);
    if (r.value_affine) {
      const i64 lab[1] = {r.value};
      const i64 ls[1] = {r.value_stride};
      streams.value->add_run(r.coords, lab, r.coord_stride, ls, r.n);
    } else {
      std::vector<i64> coords(r.coords.begin(), r.coords.end());
      for (u64 t = 0; t < r.n; ++t) {
        const i64 lab[1] = {r.values[t]};
        streams.value->add(coords, lab);
        advance(coords, r.coord_stride);
      }
    }
  }
  if (r.has_address) {
    if (!streams.address)
      streams.address = std::make_unique<Folder>(d, 1, opts_);
    if (r.address_affine) {
      const i64 lab[1] = {r.address};
      const i64 ls[1] = {r.address_stride};
      streams.address->add_run(r.coords, lab, r.coord_stride, ls, r.n);
    } else {
      std::vector<i64> coords(r.coords.begin(), r.coords.end());
      for (u64 t = 0; t < r.n; ++t) {
        const i64 lab[1] = {r.addresses[t]};
        streams.address->add(coords, lab);
        advance(coords, r.coord_stride);
      }
    }
  }
}

void FoldingSink::on_dependence_run(const DepRun& r) {
  if (r.n == 0) return;
  DepKey key{r.src_stmt, r.dst_stmt, r.kind, r.slot};
  if (buffered()) {
    auto& b = dep_buf_[key];
    if (b.points == 0) {
      b.dst_dim = r.dst_coords.size();
      b.src_dim = r.src_coords.size();
    }
    b.points += r.n;
    std::vector<i64> dst(r.dst_coords.begin(), r.dst_coords.end());
    std::vector<i64> src(r.src_coords.begin(), r.src_coords.end());
    for (u64 t = 0; t < r.n; ++t) {
      b.rows.insert(b.rows.end(), dst.begin(), dst.end());
      b.rows.insert(b.rows.end(), src.begin(), src.end());
      advance(dst, r.dst_stride);
      advance(src, r.src_stride);
    }
    return;
  }
  auto& f = deps_[key];
  if (!f)
    f = std::make_unique<Folder>(r.dst_coords.size(), r.src_coords.size(),
                                 opts_);
  f->add_run(r.dst_coords, r.src_coords, r.dst_stride, r.src_stride, r.n);
}

FoldingSink::StmtOutcome FoldingSink::fold_stmt_buffer(
    const StmtBuffer& b) const {
  StmtOutcome out;
  // Cancelled job: skip the work. The empty outcome is irrelevant — by
  // coherence the merge loop observes the token at this slot's position
  // too and degrades the statement without reading the outcome.
  if (cancel_ != nullptr && cancel_->cancelled()) return out;
  // Same stream order and the same single try as the inline path: a fault
  // keeps whatever streams finished before it and loses the rest.
  try {
    {
      Folder dom(b.dim, 0, opts_);
      const i64* p = b.domain.data();
      for (u64 i = 0; i < b.domain_points; ++i, p += b.dim)
        dom.add(std::span<const i64>(p, b.dim), {});
      out.domain = dom.finish();
    }
    if (!b.value.empty()) {
      Folder val(b.dim, 1, opts_);
      const std::size_t stride = b.dim + 1;
      for (const i64* p = b.value.data(); p != b.value.data() + b.value.size();
           p += stride)
        val.add(std::span<const i64>(p, b.dim),
                std::span<const i64>(p + b.dim, 1));
      out.values = val.finish();
    }
    if (!b.address.empty()) {
      Folder addr(b.dim, 1, opts_);
      const std::size_t stride = b.dim + 1;
      for (const i64* p = b.address.data();
           p != b.address.data() + b.address.size(); p += stride)
        addr.add(std::span<const i64>(p, b.dim),
                 std::span<const i64>(p + b.dim, 1));
      out.addresses = addr.finish();
    }
  } catch (const Error& e) {
    out.fault = true;
    out.fault_reason = e.what();
  }
  return out;
}

FoldingSink::DepOutcome FoldingSink::fold_dep_buffer(const DepBuffer& b) const {
  DepOutcome out;
  if (cancel_ != nullptr && cancel_->cancelled()) return out;
  try {
    Folder f(b.dst_dim, b.src_dim, opts_);
    const std::size_t stride = b.dst_dim + b.src_dim;
    const i64* p = b.rows.data();
    for (u64 i = 0; i < b.points; ++i, p += stride)
      f.add(std::span<const i64>(p, b.dst_dim),
            std::span<const i64>(p + b.dst_dim, b.src_dim));
    out.relation = f.finish();
  } catch (const Error& e) {
    out.fault = true;
    out.fault_reason = e.what();
  }
  return out;
}

FoldedProgram FoldingSink::finalize(const ddg::StatementTable& table) {
  obs::Span finalize_span(obs_, "fold:finalize");
  FoldedProgram prog;
  prog.statements.reserve(table.size());
  prog.total_dynamic_ops = table.total_executions();

  // Phase A (parallel mode only): fold every buffered statement and
  // dependence stream into pre-indexed outcome slots — one work-stealing
  // task per stream, statements and edges in a single fan-out so long
  // statement folds overlap with the edge folds. Tasks touch no shared
  // state (faults are captured in the slot, diagnostics deferred), so
  // phase B can merge in the serial order and reproduce the serial
  // program and diagnostic sequence byte for byte.
  std::map<int, StmtOutcome> stmt_outcomes;
  std::vector<DepKey> keys;
  std::vector<DepOutcome> dep_outcomes;
  if (buffered()) {
    std::vector<const StmtBuffer*> sbufs;
    std::vector<StmtOutcome*> souts;
    sbufs.reserve(stmt_buf_.size());
    souts.reserve(stmt_buf_.size());
    for (auto& [id, b] : stmt_buf_) {
      sbufs.push_back(&b);
      souts.push_back(&stmt_outcomes[id]);
    }
    keys.reserve(dep_buf_.size());
    for (const auto& [key, _] : dep_buf_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());  // deterministic piece order
    dep_outcomes.resize(keys.size());
    const std::size_t num_stmts = sbufs.size();
    obs::Span fanout_span(obs_, "fold:fanout");
    if (obs_ != nullptr)
      obs_->add("fold.refold_tasks",
                static_cast<i64>(num_stmts + keys.size()),
                obs::Stability::kTiming);
    pool_->parallel_for(num_stmts + keys.size(), [&](std::size_t i) {
      if (i < num_stmts)
        *souts[i] = fold_stmt_buffer(*sbufs[i]);
      else
        dep_outcomes[i - num_stmts] =
            fold_dep_buffer(dep_buf_.at(keys[i - num_stmts]));
    });
  } else {
    keys.reserve(deps_.size());
    for (const auto& [key, _] : deps_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());  // deterministic piece order
  }

  // Cancellation is observed at merge positions only (structural order):
  // once the token fires, every later statement/edge in the merge degrades
  // to an over-approximation, identically at any thread count. The chaos
  // kDeadlineMidFold hook fires the token AT a seeded merge position, so
  // the degraded suffix is reproducible for the determinism tests.
  std::size_t merge_pos = 0;
  bool cancel_noted = false;
  auto merge_checkpoint = [&]() -> bool {
    if (chaos_deadline_at_ != 0 && merge_pos == chaos_deadline_at_ &&
        cancel_ != nullptr)
      cancel_->expire();
    ++merge_pos;
    if (cancel_ == nullptr || !cancel_->poll()) return false;
    if (!cancel_noted) {
      cancel_noted = true;
      if (diag_ != nullptr)
        diag_->warn(support::Stage::kFold,
                    std::string("job cancelled (") + cancel_->reason_name() +
                        ") — remaining statements and dependence edges "
                        "degraded to over-approximations");
    }
    return true;
  };

  for (const auto& meta : table.all()) {
    FoldedStatement fs;
    fs.meta = meta;
    bool degraded = degraded_.count(meta.id) != 0;
    if (merge_checkpoint()) {
      // Drop the folded streams (in parallel mode phase A may not even
      // have produced them); the statement survives as a degraded shell
      // with its dynamic counters intact.
      degraded = true;
    } else if (buffered()) {
      auto oit = stmt_outcomes.find(meta.id);
      if (oit != stmt_outcomes.end()) {
        StmtOutcome& out = oit->second;
        fs.domain = std::move(out.domain);
        fs.values = std::move(out.values);
        fs.addresses = std::move(out.addresses);
        if (out.fault) {
          degraded = true;
          if (diag_ != nullptr)
            diag_->error(support::Stage::kFold,
                         "statement fold failed: " + out.fault_reason,
                         meta.id);
        }
      }
    } else if (auto it = stmts_.find(meta.id); it != stmts_.end()) {
      auto& streams = it->second;
      // Per-stream fault isolation: a folder fault loses this statement's
      // folds, not the whole program.
      try {
        if (streams.domain) fs.domain = streams.domain->finish();
        if (streams.value) fs.values = streams.value->finish();
        if (streams.address) fs.addresses = streams.address->finish();
      } catch (const Error& e) {
        degraded = true;
        if (diag_ != nullptr)
          diag_->error(support::Stage::kFold,
                       std::string("statement fold failed: ") + e.what(),
                       meta.id);
      }
    }
    // Folder-piece budget, charged HERE in table order — never from the
    // phase-A tasks — so exhaustion lands on the same statement at every
    // thread count.
    if (budget_ != nullptr && budget_->folder_pieces != 0) {
      std::size_t pieces = fs.domain.pieces().size() +
                           fs.values.pieces().size() +
                           fs.addresses.pieces().size();
      if (budget_->pieces_exceeded(budget_->charge_pieces(pieces)) &&
          !degraded) {
        degraded = true;
        if (diag_ != nullptr)
          diag_->warn(support::Stage::kFold,
                      "folder piece budget exhausted — statement degraded "
                      "to over-approximation",
                      meta.id);
      }
    }
    fs.domain_exact = !fs.domain.empty() && fs.domain.all_exact();
    // SCEV recognition, phase 1 (value shape): the produced values of a
    // bookkeeping instruction fold into at most two exact affine pieces
    // (loop-exit compares are affine except on the final iteration, hence
    // two pieces; reductions fragment into many pieces and never qualify).
    fs.is_scev = scev_candidate(meta.op) && !fs.values.empty() &&
                 fs.values.pieces().size() <= 2 && fs.values.all_exact() &&
                 fs.domain_exact &&
                 fs.values.total_observed() == meta.executions;
    if (degraded) {
      // Demotion happens HERE, before chain-rule demotion and SCEV
      // pruning: a truncated stream's partial points can fold exactly and
      // would otherwise certify the statement as affine bookkeeping.
      degraded_.insert(meta.id);
      fs.degraded = true;
      fs.domain_exact = false;
      fs.is_scev = false;
      taint_pieces(fs.domain);
      taint_pieces(fs.values);
      taint_pieces(fs.addresses);
      ++prog.degraded_statements;
    }
    prog.statements.push_back(std::move(fs));
  }

  // SCEV phase 2 (chain rule): a compiler's scalar evolution is a function
  // of canonical induction variables only — it cannot see through loads.
  // Values that *happen* to be affine but are computed from non-SCEV
  // producers (e.g. an address derived from a loaded row pointer) must
  // keep their dependences, or Table 2's I1->I2 pointer chain would
  // vanish. Demote to fixpoint along register-flow edges.
  {
    std::vector<std::pair<int, int>> reg_edges;
    for (const DepKey& key : keys) {
      if (std::get<2>(key) == ddg::DepKind::kRegFlow)
        reg_edges.emplace_back(std::get<0>(key), std::get<1>(key));
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [src, dst] : reg_edges) {
        auto& d = prog.statements[static_cast<std::size_t>(dst)];
        const auto& s = prog.statements[static_cast<std::size_t>(src)];
        if (d.is_scev && !s.is_scev) {
          d.is_scev = false;
          changed = true;
        }
      }
    }
  }

  // Fold dependences; drop edges touching SCEV statements (their whole
  // computation chains are bookkeeping — keeping them "greatly and
  // unnecessarily constrains possible code transformations", §5).
  // Merging keeps the dependence KIND in the key: a reg-flow and a mem-flow
  // edge between the same statement pair stay separate edges, so consumers
  // (scalar-expansion hints, the soundness oracle) see faithful kinds.
  std::map<std::tuple<int, int, ddg::DepKind>, FoldedDep> merged;
  // Builds the maximal over-approximation of a faulted edge: one inexact
  // universe piece carrying the observed instance count, so the edge (and
  // its weight) survives for the scheduler while %Aff accounting sees it
  // as inexact.
  auto universe_fallback = [](std::size_t in_dim, std::size_t label_dim,
                              u64 observed) {
    poly::PolySet rel(in_dim);
    poly::Piece p;
    p.domain = poly::Polyhedron::universe(in_dim);
    p.label_fn = poly::AffineMap(
        in_dim,
        std::vector<poly::AffineExpr>(label_dim, poly::AffineExpr(in_dim)));
    p.exact = false;
    p.label_exact = false;
    p.observed_points = observed;
    rel.add_piece(std::move(p));
    return rel;
  };
  for (std::size_t ki = 0; ki < keys.size(); ++ki) {
    const DepKey& key = keys[ki];
    auto [src, dst, kind, slot] = key;
    (void)slot;
    poly::PolySet rel;
    if (merge_checkpoint()) {
      // Cancelled: the edge survives as the maximal over-approximation so
      // the scheduler still sees it (sound, never silently dropped).
      if (buffered()) {
        const DepBuffer& b = dep_buf_.at(key);
        rel = universe_fallback(b.dst_dim, b.src_dim, b.points);
      } else {
        Folder* folder = deps_.at(key).get();
        rel = universe_fallback(folder->in_dim(), folder->label_dim(),
                                folder->points_seen());
      }
    } else if (buffered()) {
      DepOutcome& out = dep_outcomes[ki];
      if (out.fault) {
        const DepBuffer& b = dep_buf_.at(key);
        rel = universe_fallback(b.dst_dim, b.src_dim, b.points);
        if (diag_ != nullptr)
          diag_->error(support::Stage::kFold,
                       std::string("dependence fold failed (S") +
                           std::to_string(src) + " -> S" +
                           std::to_string(dst) + "): " + out.fault_reason);
      } else {
        rel = std::move(out.relation);
      }
    } else {
      Folder* folder = deps_.at(key).get();
      try {
        rel = folder->finish();
      } catch (const Error& e) {
        rel = universe_fallback(folder->in_dim(), folder->label_dim(),
                                folder->points_seen());
        if (diag_ != nullptr)
          diag_->error(support::Stage::kFold,
                       std::string("dependence fold failed (S") +
                           std::to_string(src) + " -> S" + std::to_string(dst) +
                           "): " + e.what());
      }
    }
    if (prog.statements[static_cast<std::size_t>(src)].is_scev ||
        prog.statements[static_cast<std::size_t>(dst)].is_scev) {
      ++prog.pruned_dep_edges;
      prog.pruned_dep_instances += rel.total_observed();
      continue;
    }
    // Edges incident to a degraded statement carry relations fitted on an
    // incomplete stream: force them inexact so affine_flags() taints both
    // endpoints and must_relation() drops them.
    if (degraded_.count(src) != 0 || degraded_.count(dst) != 0)
      taint_pieces(rel);
    auto mk = std::make_tuple(src, dst, kind);
    auto it = merged.find(mk);
    if (it == merged.end()) {
      FoldedDep fd;
      fd.src = src;
      fd.dst = dst;
      fd.kind = kind;
      fd.relation = std::move(rel);
      merged.emplace(mk, std::move(fd));
    } else {
      for (auto& p : rel.pieces())
        it->second.relation.add_piece(std::move(p));
    }
  }
  prog.deps.reserve(merged.size());
  for (auto& [_, fd] : merged) prog.deps.push_back(std::move(fd));

  if (obs_ != nullptr && obs_->enabled()) {
    // Stream/piece finals. Values are properties of the folded program —
    // byte-identical across thread counts — so they survive the --stable
    // report section.
    i64 pieces = 0;
    for (const auto& s : prog.statements)
      pieces += static_cast<i64>(s.domain.pieces().size() +
                                 s.values.pieces().size() +
                                 s.addresses.pieces().size());
    for (const auto& d : prog.deps)
      pieces += static_cast<i64>(d.relation.pieces().size());
    obs_->set("fold.pieces", pieces);
    obs_->set("fold.stmt_streams",
              static_cast<i64>(buffered() ? stmt_buf_.size() : stmts_.size()));
    obs_->set("fold.dep_streams", static_cast<i64>(keys.size()));
    obs_->set("fold.dep_edges", static_cast<i64>(prog.deps.size()));
    obs_->set("fold.pruned_dep_edges",
              static_cast<i64>(prog.pruned_dep_edges));
    obs_->set("fold.degraded_statements",
              static_cast<i64>(prog.degraded_statements));
    // Hit pattern depends on fold scheduling (which worker closes a chunk
    // first), so these are timing-class: excluded from the stable report.
    obs_->set("fold.cache_hits", static_cast<i64>(cache_.hits()),
              obs::Stability::kTiming);
    obs_->set("fold.cache_misses", static_cast<i64>(cache_.misses()),
              obs::Stability::kTiming);
  }
  return prog;
}

}  // namespace pp::fold
