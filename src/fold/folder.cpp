#include "fold/folder.hpp"

#include <algorithm>

namespace pp::fold {

namespace {

// Template expressions for dimension d: e_i for every i, then (with the
// octagon enabled) e_i - e_j and e_i + e_j for every i < j.
std::vector<std::vector<i64>> template_rows(std::size_t d, bool octagon) {
  std::vector<std::vector<i64>> rows;
  for (std::size_t i = 0; i < d; ++i) {
    std::vector<i64> r(d, 0);
    r[i] = 1;
    rows.push_back(r);
  }
  if (!octagon) return rows;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      std::vector<i64> diff(d, 0), sum(d, 0);
      diff[i] = 1;
      diff[j] = -1;
      sum[i] = 1;
      sum[j] = 1;
      rows.push_back(diff);
      rows.push_back(sum);
    }
  }
  return rows;
}

i128 eval_row(const std::vector<i64>& coeffs, std::span<const i64> pt) {
  i128 acc = 0;
  for (std::size_t i = 0; i < coeffs.size(); ++i)
    if (coeffs[i] != 0) acc = add_checked(acc, mul_checked(coeffs[i], pt[i]));
  return acc;
}

// Reduce [point 1] against RREF hull rows in place.
void hull_reduce(const RatMatrix& hull, RatVec& v) {
  std::size_t width = v.size();
  for (std::size_t r = 0; r < hull.rows(); ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      if (!hull.at(r, c).is_zero()) {
        if (!v[c].is_zero()) {
          Rat f = v[c];
          for (std::size_t k = c; k < width; ++k) v[k] -= f * hull.at(r, k);
        }
        break;
      }
    }
  }
}

}  // namespace

Folder::Folder(std::size_t in_dim, std::size_t label_dim, FolderOptions opts)
    : in_dim_(in_dim), label_dim_(label_dim), opts_(opts), result_(in_dim) {}

bool Folder::in_hull(const Chunk& c, std::span<const i64> point) const {
  // Full-rank basis: the affine hull is the whole space (the common case
  // once a loop nest has warmed up).
  if (c.hull.rows() == in_dim_ + 1) return true;
  RatVec v(in_dim_ + 1);
  for (std::size_t i = 0; i < in_dim_; ++i) v[i] = Rat(point[i]);
  v[in_dim_] = Rat(1);
  hull_reduce(c.hull, v);
  for (const auto& x : v)
    if (!x.is_zero()) return false;
  return true;
}

bool Folder::predicts(const Chunk& c, std::span<const i64> point,
                      std::span<const i64> label) const {
  if (!c.fit_int.empty()) {
    // Integer fast path: pure 128-bit arithmetic, no gcd normalization.
    for (std::size_t j = 0; j < label_dim_; ++j) {
      i128 acc = c.fit_int[j][in_dim_];
      for (std::size_t i = 0; i < in_dim_; ++i)
        if (c.fit_int[j][i] != 0)
          acc = add_checked(acc, mul_checked(c.fit_int[j][i], point[i]));
      if (acc != label[j]) return false;
    }
    return true;
  }
  for (std::size_t j = 0; j < label_dim_; ++j) {
    Rat acc = c.fit[j][in_dim_];
    for (std::size_t i = 0; i < in_dim_; ++i)
      if (!c.fit[j][i].is_zero()) acc += c.fit[j][i] * Rat(point[i]);
    if (acc != Rat(label[j])) return false;
  }
  return true;
}

void Folder::extend_basis(Chunk& c, std::span<const i64> point,
                          std::span<const i64> label) {
  c.basis_pts.emplace_back(point.begin(), point.end());
  c.basis_labels.emplace_back(label.begin(), label.end());
  RatVec v(in_dim_ + 1);
  for (std::size_t i = 0; i < in_dim_; ++i) v[i] = Rat(point[i]);
  v[in_dim_] = Rat(1);
  hull_reduce(c.hull, v);
  std::size_t pivot = in_dim_ + 1;
  for (std::size_t col = 0; col <= in_dim_; ++col) {
    if (!v[col].is_zero()) {
      pivot = col;
      break;
    }
  }
  PP_CHECK(pivot <= in_dim_, "extend_basis: point already in hull");
  Rat inv = Rat(1) / v[pivot];
  for (std::size_t k = pivot; k <= in_dim_; ++k) v[k] *= inv;
  // Back-eliminate to keep RREF.
  for (std::size_t r = 0; r < c.hull.rows(); ++r) {
    Rat f = c.hull.at(r, pivot);
    if (f.is_zero()) continue;
    for (std::size_t k = pivot; k <= in_dim_; ++k)
      c.hull.at(r, k) -= f * v[k];
  }
  c.hull.push_row(v);
}

void Folder::refit(Chunk& c) {
  // Solve [P 1] coeffs = a per label dimension over the basis rows. The
  // rows are affinely independent by construction, so the system is always
  // consistent (possibly underdetermined: free coefficients go to 0).
  RatMatrix sys(c.basis_pts.size(), in_dim_ + 1);
  for (std::size_t r = 0; r < c.basis_pts.size(); ++r) {
    for (std::size_t i = 0; i < in_dim_; ++i)
      sys.at(r, i) = Rat(c.basis_pts[r][i]);
    sys.at(r, in_dim_) = Rat(1);
  }
  c.fit.assign(label_dim_, RatVec(in_dim_ + 1, Rat(0)));
  for (std::size_t j = 0; j < label_dim_; ++j) {
    RatVec rhs(c.basis_pts.size());
    for (std::size_t r = 0; r < c.basis_pts.size(); ++r)
      rhs[r] = Rat(c.basis_labels[r][j]);
    auto sol = sys.solve(rhs);
    PP_CHECK(sol.has_value(), "refit on affinely independent basis failed");
    c.fit[j] = *sol;
  }
  // Precompute the integer fast path when every coefficient is integral.
  c.fit_int.clear();
  bool integral = true;
  for (const auto& row : c.fit)
    for (const auto& coeff : row)
      if (!coeff.is_integer()) integral = false;
  if (integral) {
    c.fit_int.resize(label_dim_);
    for (std::size_t j = 0; j < label_dim_; ++j) {
      c.fit_int[j].resize(in_dim_ + 1);
      for (std::size_t i = 0; i <= in_dim_; ++i)
        c.fit_int[j][i] = c.fit[j][i].num();
    }
  }
}

Folder::Chunk Folder::make_chunk(std::span<const i64> point,
                                 std::span<const i64> label) {
  Chunk c;
  c.points = 1;
  c.last_use = seq_;
  c.created = seq_;
  auto rows = template_rows(in_dim_, opts_.use_octagon);
  c.tmpl.reserve(rows.size());
  for (auto& r : rows) {
    i128 v = eval_row(r, point);
    c.tmpl.push_back({std::move(r), v, v});
  }
  c.hull = RatMatrix(0, in_dim_ + 1);
  extend_basis(c, point, label);
  refit(c);
  return c;
}

void Folder::absorb(Chunk& c, std::span<const i64> point,
                    std::span<const i64> label, bool refit_needed) {
  if (!in_hull(c, point)) {
    extend_basis(c, point, label);
    // When the current fit already predicted the point, it remains a valid
    // solution of the extended system — no refit needed, and keeping it
    // preserves the agreement with every previously verified point.
    if (refit_needed) refit(c);
  }
  for (auto& t : c.tmpl) {
    i128 v = eval_row(t.coeffs, point);
    t.min = std::min(t.min, v);
    t.max = std::max(t.max, v);
  }
  ++c.points;
  c.last_use = seq_;
}

void Folder::add(std::span<const i64> point, std::span<const i64> label) {
  PP_CHECK(point.size() == in_dim_, "folder: point arity mismatch");
  PP_CHECK(label.size() == label_dim_, "folder: label arity mismatch");
  ++total_points_;
  ++seq_;

  // Lexicographic sanity: the IIV construction guarantees increasing
  // coordinates within a context; a violation (or duplicate) makes the
  // distinct-point count unreliable, so exactness is forfeited.
  if (last_point_) {
    std::vector<i64> pv(point.begin(), point.end());
    if (!(pv > *last_point_)) lex_ok_ = false;
    *last_point_ = std::move(pv);
  } else {
    last_point_ = std::vector<i64>(point.begin(), point.end());
  }

  // 1. Route to an open piece whose affine function predicts the label,
  //    most recently used first.
  Chunk* best = nullptr;
  for (auto& c : open_) {
    if (!predicts(c, point, label)) continue;
    if (!best || c.last_use > best->last_use) best = &c;
  }
  if (best) {
    absorb(*best, point, label, /*refit_needed=*/false);
    return;
  }
  // 2. The most recent piece may absorb the point by refitting, when the
  //    point lies off its affine hull (fit unchanged on the hull, so all
  //    earlier verifications stand).
  Chunk* mru = nullptr;
  for (auto& c : open_)
    if (!mru || c.last_use > mru->last_use) mru = &c;
  if (mru && !in_hull(*mru, point)) {
    absorb(*mru, point, label, /*refit_needed=*/true);
    return;
  }
  // 3. Open a new piece, evicting the least recently used past the budget.
  if (open_.size() >= opts_.max_open_chunks) {
    std::size_t lru = 0;
    for (std::size_t i = 1; i < open_.size(); ++i)
      if (open_[i].last_use < open_[lru].last_use) lru = i;
    close_chunk(open_[lru]);
    open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(lru));
  }
  open_.push_back(make_chunk(point, label));
}

void Folder::close_chunk(Chunk& chunk) {
  if (result_.pieces().size() >= opts_.max_pieces) collapsed_ = true;

  // Emit only non-implied template constraints. A pair row a_i·x_i+a_j·x_j
  // is implied by the single-variable bounds when its observed min/max
  // match what interval arithmetic on those bounds yields — an O(d²) test
  // that replaces LP-based redundancy elimination.
  poly::Polyhedron dom(in_dim_);
  bool is_box = true;
  for (std::size_t r = 0; r < chunk.tmpl.size(); ++r) {
    const auto& t = chunk.tmpl[r];
    bool lower_redundant = false, upper_redundant = false;
    if (r >= in_dim_) {
      i128 imp_min = 0, imp_max = 0;
      for (std::size_t i = 0; i < in_dim_; ++i) {
        if (t.coeffs[i] > 0) {
          imp_min += chunk.tmpl[i].min;
          imp_max += chunk.tmpl[i].max;
        } else if (t.coeffs[i] < 0) {
          imp_min -= chunk.tmpl[i].max;
          imp_max -= chunk.tmpl[i].min;
        }
      }
      lower_redundant = t.min <= imp_min;
      upper_redundant = t.max >= imp_max;
    }
    if (lower_redundant && upper_redundant) continue;
    if (r >= in_dim_) is_box = false;
    poly::AffineExpr e(std::vector<i64>(t.coeffs), 0);
    if (t.min == t.max) {
      dom.add_eq0(e - narrow_i64(t.min));
    } else {
      if (!lower_redundant) dom.add_ge0(e - narrow_i64(t.min));
      if (!upper_redundant) dom.add_ge0(-(e) + narrow_i64(t.max));
    }
  }

  bool domain_exact = lex_ok_;
  if (domain_exact && in_dim_ > 0) {
    if (is_box) {
      i128 count = 1;
      bool overflow = false;
      for (std::size_t i = 0; i < in_dim_ && !overflow; ++i) {
        count = mul_checked(count, chunk.tmpl[i].max - chunk.tmpl[i].min + 1);
        if (count > static_cast<i128>(opts_.count_cap)) overflow = true;
      }
      domain_exact = !overflow && static_cast<u64>(count) == chunk.points;
    } else {
      auto n = dom.count_points(opts_.count_cap);
      domain_exact = n.has_value() && *n == chunk.points;
    }
  } else if (in_dim_ == 0) {
    domain_exact = lex_ok_ && chunk.points == 1;
  }

  // Integral affine label function? Coefficients must be integers that fit
  // in 64 bits — fits through wild values (e.g. double bit patterns) can
  // produce huge rational coefficients, which simply means "not a SCEV".
  auto representable = [](const Rat& r) {
    return r.is_integer() && r.num() >= INT64_MIN && r.num() <= INT64_MAX;
  };
  bool label_ok = true;
  std::vector<poly::AffineExpr> outs;
  outs.reserve(label_dim_);
  for (std::size_t j = 0; j < label_dim_ && label_ok; ++j) {
    std::vector<i64> coeffs(in_dim_);
    for (std::size_t i = 0; i < in_dim_; ++i) {
      if (!representable(chunk.fit[j][i])) {
        label_ok = false;
        break;
      }
      coeffs[i] = narrow_i64(chunk.fit[j][i].num());
    }
    if (!label_ok || !representable(chunk.fit[j][in_dim_])) {
      label_ok = false;
      break;
    }
    outs.emplace_back(std::move(coeffs), narrow_i64(chunk.fit[j][in_dim_].num()));
  }
  if (!label_ok) outs.assign(label_dim_, poly::AffineExpr(in_dim_));

  poly::Piece piece;
  piece.domain = std::move(dom);
  piece.label_fn = poly::AffineMap(in_dim_, std::move(outs));
  piece.exact = domain_exact && label_ok;
  piece.label_exact = label_ok;
  piece.observed_points = chunk.points;
  result_.add_piece(std::move(piece));
}

poly::PolySet Folder::finish() {
  // Close remaining chunks in creation order for stable output.
  std::sort(open_.begin(), open_.end(),
            [](const Chunk& a, const Chunk& b) { return a.created < b.created; });
  for (auto& c : open_) close_chunk(c);
  open_.clear();
  poly::PolySet out = std::move(result_);
  result_ = poly::PolySet(in_dim_);
  last_point_.reset();
  lex_ok_ = true;

  if (collapsed_) {
    // Scalability guard tripped: merge everything into one
    // over-approximate template piece (paper §5, over-approximation).
    poly::Polyhedron dom(in_dim_);
    auto rows = template_rows(in_dim_, opts_.use_octagon);
    for (const auto& r : rows) {
      poly::AffineExpr e(std::vector<i64>(r), 0);
      std::optional<Rat> lo, hi;
      for (const auto& p : out.pieces()) {
        auto bl = p.domain.minimize(e);
        auto bh = p.domain.maximize(e);
        if (bl.status == poly::LpStatus::kOptimal)
          lo = lo ? std::min(*lo, bl.value) : bl.value;
        if (bh.status == poly::LpStatus::kOptimal)
          hi = hi ? std::max(*hi, bh.value) : bh.value;
      }
      if (lo) dom.add_ge0(e - narrow_i64(lo->floor()));
      if (hi) dom.add_ge0(-(e) + narrow_i64(hi->ceil()));
    }
    dom.remove_redundant();
    poly::Piece merged;
    merged.domain = std::move(dom);
    merged.label_fn = poly::AffineMap(
        in_dim_, std::vector<poly::AffineExpr>(label_dim_,
                                               poly::AffineExpr(in_dim_)));
    merged.exact = false;
    merged.label_exact = false;
    merged.observed_points = out.total_observed();
    poly::PolySet collapsed_set(in_dim_);
    collapsed_set.add_piece(std::move(merged));
    collapsed_ = false;
    return collapsed_set;
  }
  return out;
}

}  // namespace pp::fold
