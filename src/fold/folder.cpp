#include "fold/folder.hpp"

#include <algorithm>

namespace pp::fold {

namespace {

// Reduce [point 1] against RREF hull rows in place.
void hull_reduce(const RatMatrix& hull, RatVec& v) {
  std::size_t width = v.size();
  for (std::size_t r = 0; r < hull.rows(); ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      if (!hull.at(r, c).is_zero()) {
        if (!v[c].is_zero()) {
          Rat f = v[c];
          for (std::size_t k = c; k < width; ++k) v[k] -= f * hull.at(r, k);
        }
        break;
      }
    }
  }
}

// point >_lex prev (strict).
bool lex_greater(std::span<const i64> point, const std::vector<i64>& prev) {
  for (std::size_t i = 0; i < prev.size(); ++i)
    if (point[i] != prev[i]) return point[i] > prev[i];
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// FoldCache

std::size_t FoldCache::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the key words.
  u64 h = 14695981039346656037ull;
  for (u64 w : k) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const poly::Piece> FoldCache::find(const Key& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void FoldCache::insert(Key key, std::shared_ptr<const poly::Piece> piece) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.size() >= kMaxEntries) return;
  map_.emplace(std::move(key), std::move(piece));
}

std::size_t FoldCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

// ---------------------------------------------------------------------------
// Folder

Folder::Folder(std::size_t in_dim, std::size_t label_dim, FolderOptions opts)
    : in_dim_(in_dim), label_dim_(label_dim), opts_(opts), result_(in_dim) {
  // Template expressions for dimension d: e_i for every i, then (with the
  // octagon enabled) e_i - e_j and e_i + e_j for every i < j.
  rows_.reserve(in_dim_ + (opts_.use_octagon ? in_dim_ * (in_dim_ - 1) : 0));
  for (std::size_t i = 0; i < in_dim_; ++i)
    rows_.push_back({static_cast<int>(i), -1, 0});
  if (opts_.use_octagon) {
    for (std::size_t i = 0; i < in_dim_; ++i) {
      for (std::size_t j = i + 1; j < in_dim_; ++j) {
        rows_.push_back({static_cast<int>(i), static_cast<int>(j), -1});
        rows_.push_back({static_cast<int>(i), static_cast<int>(j), 1});
      }
    }
  }
}

i128 Folder::eval_row(const TRow& t, std::span<const i64> pt) const {
  // Coefficients are ±1, so two i64 terms can never overflow i128.
  i128 v = pt[static_cast<std::size_t>(t.i)];
  if (t.j >= 0) v += static_cast<i128>(t.cj) * pt[static_cast<std::size_t>(t.j)];
  return v;
}

void Folder::rebuild_hull_int(Chunk& c) const {
  // Scale each RREF row to integers (row × lcm of its denominators) so
  // membership tests run fraction-free. The test only needs zero/nonzero
  // of the reduced vector, so uniform row scaling is harmless. Any
  // overflow while scaling abandons the fast path for this chunk.
  //
  // The rows are stored sorted by pivot column: in_hull's reduction
  // rescales only the suffix v[pivot..], which keeps the accumulated
  // per-component scale uniform across each elimination's suffix ONLY
  // when pivots are visited in increasing order. Reducing with a
  // smaller-pivot row after a larger-pivot one would combine
  // differently-scaled components and corrupt the zero/nonzero verdict
  // (extend_basis appends rows in discovery order, so decreasing pivots
  // do occur).
  c.hull_int.clear();
  c.hull_piv.clear();
  try {
    const std::size_t width = in_dim_ + 1;
    for (std::size_t r = 0; r < c.hull.rows(); ++r) {
      i128 l = 1;
      for (std::size_t k = 0; k < width; ++k)
        l = lcm(l, c.hull.at(r, k).den());
      std::vector<i128> row(width);
      std::size_t piv = width;
      for (std::size_t k = 0; k < width; ++k) {
        const Rat& x = c.hull.at(r, k);
        row[k] = mul_checked(x.num(), l / x.den());
        if (piv == width && row[k] != 0) piv = k;
      }
      PP_CHECK(piv < width, "hull row with no pivot");
      c.hull_int.push_back(std::move(row));
      c.hull_piv.push_back(piv);
    }
    for (std::size_t a = 1; a < c.hull_int.size(); ++a) {
      // Insertion sort by pivot: row counts are tiny (≤ in_dim_ + 1).
      std::size_t b = a;
      while (b > 0 && c.hull_piv[b - 1] > c.hull_piv[b]) {
        std::swap(c.hull_piv[b - 1], c.hull_piv[b]);
        std::swap(c.hull_int[b - 1], c.hull_int[b]);
        --b;
      }
    }
  } catch (const Error&) {
    c.hull_int.clear();
    c.hull_piv.clear();
  }
}

bool Folder::in_hull(const Chunk& c, std::span<const i64> point) const {
  // Full-rank basis: the affine hull is the whole space (the common case
  // once a loop nest has warmed up).
  if (c.hull.rows() == in_dim_ + 1) return true;
  const std::size_t width = in_dim_ + 1;
  if (c.hull_int.size() == c.hull.rows()) {
    // Fraction-free fast path: reduce [point 1] against the scaled rows.
    // Eliminating pivot column p of row R rescales v by R[p]; scale never
    // affects the zero/nonzero verdict. Overflow (rare, needs huge
    // coordinates) falls through to the exact rational path.
    try {
      hullv_.resize(width);
      for (std::size_t i = 0; i < in_dim_; ++i) hullv_[i] = point[i];
      hullv_[in_dim_] = 1;
      for (std::size_t r = 0; r < c.hull_int.size(); ++r) {
        const std::size_t p = c.hull_piv[r];
        const i128 f = hullv_[p];
        if (f == 0) continue;
        const std::vector<i128>& row = c.hull_int[r];
        const i128 s = row[p];
        for (std::size_t k = p; k < width; ++k)
          hullv_[k] = sub_checked(mul_checked(s, hullv_[k]),
                                  mul_checked(f, row[k]));
      }
      for (const i128& x : hullv_)
        if (x != 0) return false;
      return true;
    } catch (const Error&) {
      // fall through to the rational path
    }
  }
  RatVec v(width);
  for (std::size_t i = 0; i < in_dim_; ++i) v[i] = Rat(point[i]);
  v[in_dim_] = Rat(1);
  hull_reduce(c.hull, v);
  for (const auto& x : v)
    if (!x.is_zero()) return false;
  return true;
}

bool Folder::predicts(const Chunk& c, std::span<const i64> point,
                      std::span<const i64> label) const {
  if (!c.fit_int.empty()) {
    // Integer fast path: pure 128-bit arithmetic, no gcd normalization.
    for (std::size_t j = 0; j < label_dim_; ++j) {
      i128 acc = c.fit_int[j][in_dim_];
      for (std::size_t i = 0; i < in_dim_; ++i)
        if (c.fit_int[j][i] != 0)
          acc = add_checked(acc, mul_checked(c.fit_int[j][i], point[i]));
      if (acc != label[j]) return false;
    }
    return true;
  }
  for (std::size_t j = 0; j < label_dim_; ++j) {
    Rat acc = c.fit[j][in_dim_];
    for (std::size_t i = 0; i < in_dim_; ++i)
      if (!c.fit[j][i].is_zero()) acc += c.fit[j][i] * Rat(point[i]);
    if (acc != Rat(label[j])) return false;
  }
  return true;
}

void Folder::extend_basis(Chunk& c, std::span<const i64> point,
                          std::span<const i64> label) {
  c.basis_pts.emplace_back(point.begin(), point.end());
  c.basis_labels.emplace_back(label.begin(), label.end());
  RatVec v(in_dim_ + 1);
  for (std::size_t i = 0; i < in_dim_; ++i) v[i] = Rat(point[i]);
  v[in_dim_] = Rat(1);
  hull_reduce(c.hull, v);
  std::size_t pivot = in_dim_ + 1;
  for (std::size_t col = 0; col <= in_dim_; ++col) {
    if (!v[col].is_zero()) {
      pivot = col;
      break;
    }
  }
  PP_CHECK(pivot <= in_dim_, "extend_basis: point already in hull");
  Rat inv = Rat(1) / v[pivot];
  for (std::size_t k = pivot; k <= in_dim_; ++k) v[k] *= inv;
  // Back-eliminate to keep RREF.
  for (std::size_t r = 0; r < c.hull.rows(); ++r) {
    Rat f = c.hull.at(r, pivot);
    if (f.is_zero()) continue;
    for (std::size_t k = pivot; k <= in_dim_; ++k)
      c.hull.at(r, k) -= f * v[k];
  }
  c.hull.push_row(v);
  rebuild_hull_int(c);
}

void Folder::refit(Chunk& c) {
  // Solve [P 1] coeffs = a per label dimension over the basis rows. The
  // rows are affinely independent by construction, so the system is always
  // consistent (possibly underdetermined: free coefficients go to 0).
  RatMatrix sys(c.basis_pts.size(), in_dim_ + 1);
  for (std::size_t r = 0; r < c.basis_pts.size(); ++r) {
    for (std::size_t i = 0; i < in_dim_; ++i)
      sys.at(r, i) = Rat(c.basis_pts[r][i]);
    sys.at(r, in_dim_) = Rat(1);
  }
  c.fit.assign(label_dim_, RatVec(in_dim_ + 1, Rat(0)));
  for (std::size_t j = 0; j < label_dim_; ++j) {
    RatVec rhs(c.basis_pts.size());
    for (std::size_t r = 0; r < c.basis_pts.size(); ++r)
      rhs[r] = Rat(c.basis_labels[r][j]);
    auto sol = sys.solve(rhs);
    PP_CHECK(sol.has_value(), "refit on affinely independent basis failed");
    c.fit[j] = *sol;
  }
  // Precompute the integer fast path when every coefficient is integral.
  c.fit_int.clear();
  bool integral = true;
  for (const auto& row : c.fit) {
    for (const auto& coeff : row) {
      if (!coeff.is_integer()) {
        integral = false;
        break;
      }
    }
    if (!integral) break;
  }
  if (integral) {
    c.fit_int.resize(label_dim_);
    for (std::size_t j = 0; j < label_dim_; ++j) {
      c.fit_int[j].resize(in_dim_ + 1);
      for (std::size_t i = 0; i <= in_dim_; ++i)
        c.fit_int[j][i] = c.fit[j][i].num();
    }
  }
}

Folder::Chunk Folder::make_chunk(std::span<const i64> point,
                                 std::span<const i64> label, u64 at_seq) {
  Chunk c;
  c.id = ++next_chunk_id_;
  c.points = 1;
  c.last_use = at_seq;
  c.created = at_seq;
  c.bnd.resize(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    i128 v = eval_row(rows_[r], point);
    c.bnd[r] = {v, v};
  }
  c.hull = RatMatrix(0, in_dim_ + 1);
  extend_basis(c, point, label);
  refit(c);
  return c;
}

void Folder::absorb(Chunk& c, std::span<const i64> point,
                    std::span<const i64> label, bool refit_needed,
                    u64 at_seq) {
  if (!in_hull(c, point)) {
    extend_basis(c, point, label);
    // When the current fit already predicted the point, it remains a valid
    // solution of the extended system — no refit needed, and keeping it
    // preserves the agreement with every previously verified point.
    if (refit_needed) refit(c);
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    i128 v = eval_row(rows_[r], point);
    c.bnd[r].min = std::min(c.bnd[r].min, v);
    c.bnd[r].max = std::max(c.bnd[r].max, v);
  }
  ++c.points;
  c.last_use = at_seq;
}

std::size_t Folder::route_point(std::span<const i64> point,
                                std::span<const i64> label, u64 at_seq) {
  route_order_.resize(open_.size());
  for (std::size_t i = 0; i < open_.size(); ++i) route_order_[i] = i;
  // last_use values are distinct (each point routes to one chunk), so the
  // recency order is a strict total order.
  std::sort(route_order_.begin(), route_order_.end(),
            [this](std::size_t a, std::size_t b) {
              return open_[a].last_use > open_[b].last_use;
            });
  // 1. Route to an open piece whose affine function predicts the label.
  //    Scanning most-recent-first lets the first match win.
  for (std::size_t idx : route_order_) {
    if (predicts(open_[idx], point, label)) {
      absorb(open_[idx], point, label, /*refit_needed=*/false, at_seq);
      return idx;
    }
  }
  // 2. The most recent piece may absorb the point by refitting, when the
  //    point lies off its affine hull (fit unchanged on the hull, so all
  //    earlier verifications stand).
  if (!open_.empty()) {
    std::size_t mru = route_order_[0];
    if (!in_hull(open_[mru], point)) {
      absorb(open_[mru], point, label, /*refit_needed=*/true, at_seq);
      return mru;
    }
  }
  // 3. Open a new piece, evicting the least recently used past the budget.
  if (open_.size() >= opts_.max_open_chunks) {
    std::size_t lru = route_order_.back();
    close_chunk(open_[lru]);
    open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(lru));
  }
  open_.push_back(make_chunk(point, label, at_seq));
  return open_.size() - 1;
}

void Folder::start_run(std::span<const i64> point, std::span<const i64> label) {
  run_base_.assign(point.begin(), point.end());
  run_lbase_.assign(label.begin(), label.end());
  run_last_ = run_base_;
  run_llast_ = run_lbase_;
  run_len_ = 1;
  run_start_seq_ = seq_;
  run_stride_viol_ = false;
}

void Folder::set_run_last(std::span<const i64> point,
                          std::span<const i64> label) {
  run_last_.assign(point.begin(), point.end());
  run_llast_.assign(label.begin(), label.end());
}

bool Folder::fit_maps_stride(const Chunk& c) const {
  return fit_maps(c, pstride_, lstride_);
}

bool Folder::fit_maps(const Chunk& c, std::span<const i128> ps,
                      std::span<const i128> ls) const {
  if (label_dim_ == 0) return true;
  // Overflow in the stride image falls back to scalar routing (which is
  // always sound) instead of faulting a stream the point-at-a-time path
  // would have survived.
  try {
    if (!c.fit_int.empty()) {
      for (std::size_t j = 0; j < label_dim_; ++j) {
        i128 acc = 0;
        for (std::size_t i = 0; i < in_dim_; ++i)
          if (c.fit_int[j][i] != 0)
            acc = add_checked(acc, mul_checked(c.fit_int[j][i], ps[i]));
        if (acc != ls[j]) return false;
      }
      return true;
    }
    for (std::size_t j = 0; j < label_dim_; ++j) {
      Rat acc(0);
      for (std::size_t i = 0; i < in_dim_; ++i)
        if (!c.fit[j][i].is_zero()) acc += c.fit[j][i] * Rat(ps[i]);
      if (acc != Rat(ls[j])) return false;
    }
    return true;
  } catch (const Error&) {
    return false;
  }
}

Folder::Chunk* Folder::chunk_by_id(u64 id) {
  for (auto& c : open_)
    if (c.id == id) return &c;
  return nullptr;
}

bool Folder::chain_defer(u64 n) {
  if (chain_state_ == ChainState::kNone) return false;
  if (run_stride_viol_ || n < 2 || n != chain_T_) return false;
  if (pstride_ != chain_s_ || lstride_ != chain_ls_) return false;
  if (chain_state_ == ChainState::kArmed) {
    // Within-group extension: the base advances by exactly the level-2
    // stride. The geometric conditions were established when the chain
    // armed and no chunk state has changed since, so O(d) delta checks
    // suffice.
    bool within = true;
    for (std::size_t i = 0; within && i < in_dim_; ++i)
      within = static_cast<i128>(run_base_[i]) - chain_last_base_[i] ==
               chain_o1_[i];
    for (std::size_t j = 0; within && j < label_dim_; ++j)
      within = static_cast<i128>(run_lbase_[j]) - chain_last_lbase_[j] ==
               chain_lo1_[j];
    if (within) {
      if (chain_R_ != 0 && chain_B_ >= chain_R_) return false;  // irregular
      ++chain_B_;
    } else if (chain_R_ == 0) {
      // First group boundary: learn the group size and the level-3
      // stride. The new group base b = base0 + o2 needs the full
      // point-routing conditions once — the fit must predict it (so
      // generic routing would pick this chunk, the MRU, at step 1) and it
      // must sit in the affine hull (so absorption would not extend the
      // basis). The fit mapping o2 then propagates both properties to
      // every later group: each next group base differs by o2, a hull
      // direction, from a predicted hull member.
      Chunk* c = chunk_by_id(chain_chunk_id_);
      PP_CHECK(c != nullptr, "folder: chained chunk vanished");
      chain_o2_.resize(in_dim_);
      chain_lo2_.resize(label_dim_);
      for (std::size_t i = 0; i < in_dim_; ++i)
        chain_o2_[i] = static_cast<i128>(run_base_[i]) - chain_base0_[i];
      for (std::size_t j = 0; j < label_dim_; ++j)
        chain_lo2_[j] = static_cast<i128>(run_lbase_[j]) - chain_lbase0_[j];
      if (!fit_maps(*c, chain_o2_, chain_lo2_)) return false;
      if (!predicts(*c, run_base_, run_lbase_)) return false;
      if (!in_hull(*c, run_base_)) return false;
      chain_R_ = chain_B_;
      chain_M_ = 2;
      chain_B_ = 1;
      chain_group_base_.assign(run_base_.begin(), run_base_.end());
      chain_group_lbase_.assign(run_lbase_.begin(), run_lbase_.end());
    } else {
      // Later group boundaries: only complete groups advancing by the
      // learned level-3 stride extend the chain.
      if (chain_B_ != chain_R_) return false;
      bool boundary = true;
      for (std::size_t i = 0; boundary && i < in_dim_; ++i)
        boundary = static_cast<i128>(run_base_[i]) - chain_group_base_[i] ==
                   chain_o2_[i];
      for (std::size_t j = 0; boundary && j < label_dim_; ++j)
        boundary = static_cast<i128>(run_lbase_[j]) - chain_group_lbase_[j] ==
                   chain_lo2_[j];
      if (!boundary) return false;
      ++chain_M_;
      chain_B_ = 1;
      chain_group_base_.assign(run_base_.begin(), run_base_.end());
      chain_group_lbase_.assign(run_lbase_.begin(), run_lbase_.end());
    }
    chain_last_base_.assign(run_base_.begin(), run_base_.end());
    chain_last_lbase_.assign(run_lbase_.begin(), run_lbase_.end());
    chain_points_ += n;
    chain_end_seq_ = run_start_seq_ + n - 1;
    return true;
  }
  // Seeded: try to arm on this run. Deferring run points (b + t·s,
  // t < n) and every later matching run (bases b + e·o1 and, past the
  // first group boundary, + g·o2) is equivalent to the generic flush path
  // iff, on the seed chunk c:
  //   * the fit maps every stride and predicts b — then it predicts every
  //     deferred point by affinity, so point-at-a-time routing would pick
  //     c (it is MRU: it took the seed run's last point, and no other
  //     routing happens mid-chain) via step 1 with no refit;
  //   * the generators b, b + (n-1)·s and b + o1 lie in c's affine hull —
  //     affine hulls are closed under affine combination, so every
  //     deferred point does too, and point-at-a-time absorption would
  //     never extend the basis.
  // Template rows are linear, so their min/max over the deferred block
  // sit at its lattice corners, applied in chain_finalize().
  Chunk* c = chunk_by_id(chain_chunk_id_);
  if (c == nullptr) {
    chain_state_ = ChainState::kNone;
    return false;
  }
  chain_o1_.resize(in_dim_);
  chain_lo1_.resize(label_dim_);
  chain_tmp_.resize(in_dim_);
  for (std::size_t i = 0; i < in_dim_; ++i) {
    chain_o1_[i] = static_cast<i128>(run_base_[i]) - chain_seed_base_[i];
    const i128 probe = static_cast<i128>(run_base_[i]) + chain_o1_[i];
    if (probe < INT64_MIN || probe > INT64_MAX) return false;
    chain_tmp_[i] = static_cast<i64>(probe);
  }
  for (std::size_t j = 0; j < label_dim_; ++j)
    chain_lo1_[j] = static_cast<i128>(run_lbase_[j]) - chain_seed_lbase_[j];
  if (!fit_maps(*c, pstride_, lstride_) ||
      !fit_maps(*c, chain_o1_, chain_lo1_))
    return false;
  if (!predicts(*c, run_base_, run_lbase_)) return false;
  if (!in_hull(*c, run_base_) || !in_hull(*c, run_last_) ||
      !in_hull(*c, chain_tmp_))
    return false;
  chain_state_ = ChainState::kArmed;
  chain_base0_.assign(run_base_.begin(), run_base_.end());
  chain_lbase0_.assign(run_lbase_.begin(), run_lbase_.end());
  chain_group_base_ = chain_base0_;
  chain_group_lbase_ = chain_lbase0_;
  chain_last_base_ = chain_base0_;
  chain_last_lbase_ = chain_lbase0_;
  chain_R_ = 0;
  chain_M_ = 1;
  chain_B_ = 1;
  chain_points_ = n;
  chain_end_seq_ = run_start_seq_ + n - 1;
  return true;
}

void Folder::chain_finalize() {
  if (chain_state_ != ChainState::kArmed) {
    chain_state_ = ChainState::kNone;
    return;
  }
  chain_state_ = ChainState::kNone;
  Chunk* c = chunk_by_id(chain_chunk_id_);
  PP_CHECK(c != nullptr, "folder: chained chunk vanished");
  // Template rows are linear, so their extrema over the deferred block —
  // a full (M-1)×R×n lattice box plus the current (possibly partial)
  // group's B×n slice — sit at the corners of those two boxes. Every
  // corner is a genuinely observed point, so the i64 narrowing is exact.
  chain_tmp_.resize(in_dim_);
  auto fold_corner = [&](u64 g, u64 e, u64 t) {
    for (std::size_t i = 0; i < in_dim_; ++i) {
      i128 v = static_cast<i128>(chain_base0_[i]) +
               static_cast<i128>(t) * chain_s_[i] +
               static_cast<i128>(e) * chain_o1_[i];
      if (g > 0) v += static_cast<i128>(g) * chain_o2_[i];
      chain_tmp_[i] = static_cast<i64>(v);
    }
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      const i128 v = eval_row(rows_[r], chain_tmp_);
      c->bnd[r].min = std::min(c->bnd[r].min, v);
      c->bnd[r].max = std::max(c->bnd[r].max, v);
    }
  };
  const u64 t_hi = chain_T_ - 1;
  if (chain_M_ >= 2) {
    // Complete groups 0 .. M-2 (each R runs).
    for (u64 g : {u64{0}, chain_M_ - 2})
      for (u64 e : {u64{0}, chain_R_ - 1})
        for (u64 t : {u64{0}, t_hi}) fold_corner(g, e, t);
  }
  // Current group (ordinal M, B runs, possibly partial).
  for (u64 e : {u64{0}, chain_B_ - 1})
    for (u64 t : {u64{0}, t_hi}) fold_corner(chain_M_ - 1, e, t);
  c->points += chain_points_;
  c->last_use = chain_end_seq_;
}

void Folder::chain_seed(u64 n, u64 chunk_id, bool clean) {
  if (!clean || n < 2) {
    chain_state_ = ChainState::kNone;
    return;
  }
  chain_state_ = ChainState::kSeeded;
  chain_chunk_id_ = chunk_id;
  chain_T_ = n;
  chain_s_.assign(pstride_.begin(), pstride_.end());
  chain_ls_.assign(lstride_.begin(), lstride_.end());
  chain_seed_base_.assign(run_base_.begin(), run_base_.end());
  chain_seed_lbase_.assign(run_lbase_.begin(), run_lbase_.end());
}

void Folder::bulk_absorb(Chunk& c, std::span<const i64> first,
                         std::span<const i64> first_label, u64 extra,
                         u64 end_seq) {
  // `first` is the earliest unabsorbed run point; `run_last_` the final
  // one. The chunk's fit maps the stride and already predicts the point
  // before `first`, so by affinity it predicts the whole remainder —
  // point-at-a-time routing would absorb every one of these into `c` with
  // no refits (and `c` stays MRU throughout). Affine hulls are closed
  // under affine combination, so only `first` can extend the basis; the
  // template rows are linear, so their min/max over the run sit at the
  // endpoints.
  if (!in_hull(c, first)) extend_basis(c, first, first_label);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    i128 v1 = eval_row(rows_[r], first);
    i128 v2 = eval_row(rows_[r], run_last_);
    c.bnd[r].min = std::min(c.bnd[r].min, std::min(v1, v2));
    c.bnd[r].max = std::max(c.bnd[r].max, std::max(v1, v2));
  }
  c.points += extra;
  c.last_use = end_seq;
}

void Folder::flush_run() {
  if (run_len_ == 0) return;
  const u64 n = run_len_;
  run_len_ = 0;
  if (chain_defer(n)) {
    run_stride_viol_ = false;
    return;
  }
  chain_finalize();
  std::size_t base_ci = 0;
  bool clean = false;
  cur_pt_ = run_base_;
  cur_lab_ = run_lbase_;
  for (u64 k = 0; k < n; ++k) {
    std::size_t ci = route_point(cur_pt_, cur_lab_, run_start_seq_ + k);
    if (k == 0) base_ci = ci;
    // A non-lex-positive stride violates monotonicity at every run point
    // AFTER the base — apply it only once the base has routed, so closes
    // forced by the base see the same lex state as point-at-a-time.
    if (k == 0 && run_stride_viol_) lex_ok_ = false;
    if (k + 1 >= n) break;
    // Advance to the next run point (always a genuinely observed i64
    // point, so the narrowing is exact).
    for (std::size_t i = 0; i < in_dim_; ++i)
      cur_pt_[i] = static_cast<i64>(cur_pt_[i] + pstride_[i]);
    for (std::size_t j = 0; j < label_dim_; ++j)
      cur_lab_[j] = static_cast<i64>(cur_lab_[j] + lstride_[j]);
    if (fit_maps_stride(open_[ci])) {
      bulk_absorb(open_[ci], cur_pt_, cur_lab_, n - 1 - k,
                  run_start_seq_ + n - 1);
      // The whole run landed in one chunk with no per-point routing —
      // a chain candidate (the next flush may arm on it).
      clean = (k == 0);
      break;
    }
  }
  chain_seed(n, clean ? open_[base_ci].id : 0, clean);
  run_stride_viol_ = false;
}

void Folder::add(std::span<const i64> point, std::span<const i64> label) {
  PP_CHECK(point.size() == in_dim_, "folder: point arity mismatch");
  PP_CHECK(label.size() == label_dim_, "folder: label arity mismatch");
  ++total_points_;
  ++seq_;

  if (!opts_.stride_runs) {
    // Reference point-at-a-time path (ablation knob): lexicographic check
    // in place against the previous point, then the routing steps.
    if (have_prev_ && !lex_greater(point, run_last_)) lex_ok_ = false;
    run_last_.assign(point.begin(), point.end());
    have_prev_ = true;
    route_point(point, label, seq_);
    return;
  }

  if (run_len_ == 0) {
    start_run(point, label);
    return;
  }
  if (run_len_ == 1) {
    // Any second point establishes the stride.
    pstride_.resize(in_dim_);
    lstride_.resize(label_dim_);
    for (std::size_t i = 0; i < in_dim_; ++i)
      pstride_[i] = static_cast<i128>(point[i]) - run_base_[i];
    for (std::size_t j = 0; j < label_dim_; ++j)
      lstride_[j] = static_cast<i128>(label[j]) - run_lbase_[j];
    // Lexicographic sanity: the IIV construction guarantees increasing
    // coordinates within a context; a violation (or duplicate) makes the
    // distinct-point count unreliable, so exactness is forfeited. Within
    // a run the per-point check reduces to the stride's lex sign.
    bool positive = false;
    for (std::size_t i = 0; i < in_dim_; ++i) {
      if (pstride_[i] != 0) {
        positive = pstride_[i] > 0;
        break;
      }
    }
    run_stride_viol_ = !positive;
    set_run_last(point, label);
    run_len_ = 2;
    return;
  }
  // Run extension: constant point- AND label-stride.
  bool same = true;
  for (std::size_t i = 0; i < in_dim_; ++i) {
    if (static_cast<i128>(point[i]) - run_last_[i] != pstride_[i]) {
      same = false;
      break;
    }
  }
  if (same) {
    for (std::size_t j = 0; j < label_dim_; ++j) {
      if (static_cast<i128>(label[j]) - run_llast_[j] != lstride_[j]) {
        same = false;
        break;
      }
    }
  }
  if (same) {
    set_run_last(point, label);
    ++run_len_;
    return;
  }
  flush_run();
  if (!lex_greater(point, run_last_)) lex_ok_ = false;
  start_run(point, label);
}

void Folder::add_run(std::span<const i64> point, std::span<const i64> label,
                     std::span<const i64> pstride,
                     std::span<const i64> lstride, u64 n) {
  PP_CHECK(point.size() == in_dim_ && pstride.size() == in_dim_,
           "folder: run point arity mismatch");
  PP_CHECK(label.size() == label_dim_ && lstride.size() == label_dim_,
           "folder: run label arity mismatch");
  if (n == 0) return;
  if (n == 1) {  // stride meaningless for one point — plain scalar add
    add(point, label);
    return;
  }
  // Equivalence with n scalar add() calls needs each consecutive i128
  // difference to equal the stride exactly, i.e. no 64-bit wrap among the
  // run points. Coordinates move monotonically, so endpoint checks
  // suffice; a wrapping run replays through the scalar loop below.
  auto in_range = [n](std::span<const i64> base, std::span<const i64> stride) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      const i128 last = static_cast<i128>(base[i]) +
                        static_cast<i128>(stride[i]) * static_cast<i128>(n - 1);
      if (last < INT64_MIN || last > INT64_MAX) return false;
    }
    return true;
  };
  if (opts_.stride_runs && in_range(point, pstride) &&
      in_range(label, lstride)) {
    // O(d) fast paths: the whole call either extends the pending run or
    // becomes the new pending run — state identical to the scalar loop
    // (which would only bump counters and the run tail point by point),
    // without touching any chunk.
    arun_pt_.resize(in_dim_);
    arun_lab_.resize(label_dim_);
    for (std::size_t i = 0; i < in_dim_; ++i)
      arun_pt_[i] = static_cast<i64>(
          static_cast<i128>(point[i]) +
          static_cast<i128>(pstride[i]) * static_cast<i128>(n - 1));
    for (std::size_t j = 0; j < label_dim_; ++j)
      arun_lab_[j] = static_cast<i64>(
          static_cast<i128>(label[j]) +
          static_cast<i128>(lstride[j]) * static_cast<i128>(n - 1));
    auto strides_match = [&] {
      for (std::size_t i = 0; i < in_dim_; ++i)
        if (pstride_[i] != pstride[i]) return false;
      for (std::size_t j = 0; j < label_dim_; ++j)
        if (lstride_[j] != lstride[j]) return false;
      return true;
    };
    auto continues_pending = [&] {
      for (std::size_t i = 0; i < in_dim_; ++i)
        if (static_cast<i128>(point[i]) - run_last_[i] != pstride_[i])
          return false;
      for (std::size_t j = 0; j < label_dim_; ++j)
        if (static_cast<i128>(label[j]) - run_llast_[j] != lstride_[j])
          return false;
      return true;
    };
    auto install_strides = [&] {
      pstride_.resize(in_dim_);
      lstride_.resize(label_dim_);
      for (std::size_t i = 0; i < in_dim_; ++i) pstride_[i] = pstride[i];
      for (std::size_t j = 0; j < label_dim_; ++j) lstride_[j] = lstride[j];
      bool positive = false;
      for (std::size_t i = 0; i < in_dim_; ++i) {
        if (pstride_[i] != 0) {
          positive = pstride_[i] > 0;
          break;
        }
      }
      run_stride_viol_ = !positive;
    };
    if (run_len_ >= 2 && strides_match() && continues_pending()) {
      // Pure extension of the pending run.
      total_points_ += n;
      seq_ += n;
      run_len_ += n;
      set_run_last(arun_pt_, arun_lab_);
      return;
    }
    if (run_len_ == 1) {
      // The pending single point has no stride yet; when this run's base
      // continues it at the run's own stride, they merge into one run
      // (exactly what the scalar loop's stride-establishing add would do).
      bool cont = true;
      for (std::size_t i = 0; cont && i < in_dim_; ++i)
        cont = static_cast<i128>(point[i]) - run_last_[i] == pstride[i];
      for (std::size_t j = 0; cont && j < label_dim_; ++j)
        cont = static_cast<i128>(label[j]) - run_llast_[j] == lstride[j];
      if (cont) {
        install_strides();
        total_points_ += n;
        seq_ += n;
        run_len_ = 1 + n;
        set_run_last(arun_pt_, arun_lab_);
        return;
      }
    }
    if (run_len_ == 0) {
      // Fresh stream (or right after finish()): the run becomes the
      // pending run wholesale; no lexicographic reference exists yet.
      run_base_.assign(point.begin(), point.end());
      run_lbase_.assign(label.begin(), label.end());
      install_strides();
      total_points_ += n;
      seq_ += n;
      run_start_seq_ = seq_ - n + 1;
      run_len_ = n;
      set_run_last(arun_pt_, arun_lab_);
      return;
    }
    if (run_len_ >= 2) {
      // The run breaks the pending one: flush it (possibly into a chain),
      // apply the cross-run lexicographic check against its tail, and
      // install this run as the new pending run.
      flush_run();
      if (!lex_greater(point, run_last_)) lex_ok_ = false;
      run_base_.assign(point.begin(), point.end());
      run_lbase_.assign(label.begin(), label.end());
      install_strides();
      total_points_ += n;
      seq_ += n;
      run_start_seq_ = seq_ - n + 1;
      run_len_ = n;
      set_run_last(arun_pt_, arun_lab_);
      return;
    }
    // run_len_ == 1 and the base does not continue it: fall through to
    // the scalar loop (the pending point still needs its stride decided
    // by add()'s break-or-establish logic).
  }
  auto wrap_add = [](i64 a, i64 b) {
    return static_cast<i64>(static_cast<u64>(a) + static_cast<u64>(b));
  };
  arun_pt_.assign(point.begin(), point.end());
  arun_lab_.assign(label.begin(), label.end());
  for (u64 k = 0; k < n; ++k) {
    if (k > 0) {
      for (std::size_t i = 0; i < in_dim_; ++i)
        arun_pt_[i] = wrap_add(arun_pt_[i], pstride[i]);
      for (std::size_t j = 0; j < label_dim_; ++j)
        arun_lab_[j] = wrap_add(arun_lab_[j], lstride[j]);
    }
    add(arun_pt_, arun_lab_);
  }
}

poly::Polyhedron Folder::emit_domain(const std::vector<Bnd>& bnd,
                                     bool& is_box, bool& clamped) const {
  poly::Polyhedron dom(in_dim_);
  is_box = true;
  clamped = false;
  // Usable as an AffineExpr constant term: both v and -v must fit int64.
  auto const_ok = [](i128 v) { return v > INT64_MIN && v <= INT64_MAX; };
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const TRow& t = rows_[r];
    const Bnd& b = bnd[r];
    // Emit only non-implied template constraints. A pair row x_i ± x_j is
    // implied by the single-variable bounds when its observed min/max
    // match what interval arithmetic on those bounds yields — an O(d²)
    // test that replaces LP-based redundancy elimination.
    bool lower_redundant = false, upper_redundant = false;
    if (t.j >= 0) {
      const Bnd& bi = bnd[static_cast<std::size_t>(t.i)];
      const Bnd& bj = bnd[static_cast<std::size_t>(t.j)];
      i128 imp_min = bi.min + (t.cj > 0 ? bj.min : -bj.max);
      i128 imp_max = bi.max + (t.cj > 0 ? bj.max : -bj.min);
      lower_redundant = b.min <= imp_min;
      upper_redundant = b.max >= imp_max;
      if (lower_redundant && upper_redundant) continue;
      is_box = false;
    }
    std::vector<i64> coeffs(in_dim_, 0);
    coeffs[static_cast<std::size_t>(t.i)] = 1;
    if (t.j >= 0) coeffs[static_cast<std::size_t>(t.j)] = t.cj;
    poly::AffineExpr e(std::move(coeffs), 0);
    // Octagon sum rows over extreme values (e.g. double bit patterns) can
    // hold i128 bounds outside int64: dropping the offending direction
    // keeps the domain a sound over-approximation, and `clamped` makes
    // the caller forfeit exactness instead of trapping the pipeline.
    if (b.min == b.max) {
      if (const_ok(b.min))
        dom.add_eq0(e - static_cast<i64>(b.min));
      else
        clamped = true;
      continue;
    }
    if (!lower_redundant) {
      if (const_ok(b.min))
        dom.add_ge0(e - static_cast<i64>(b.min));
      else
        clamped = true;
    }
    if (!upper_redundant) {
      if (b.max >= INT64_MIN && b.max <= INT64_MAX)
        dom.add_ge0(-(e) + static_cast<i64>(b.max));
      else
        clamped = true;
    }
  }
  return dom;
}

std::optional<u64> Folder::count_octagon_2d(const std::vector<Bnd>& bnd) const {
  // rows_ layout for d=2 with octagon: [x], [y], [x-y], [x+y]. For fixed
  // x the feasible y range is [L(x), U(x)] with
  //   L = max(y_lo, x - d_hi, s_lo - x),  U = min(y_hi, x - d_lo, s_hi - x),
  // all slopes in {-1, 0, 1}. The count is sum over x of max(0, U-L+1) —
  // evaluated in closed form by cutting [x_lo, x_hi] at the (≤ 12)
  // pairwise crossings, where each segment's envelope is a single affine
  // piece and its contribution an exact arithmetic series.
  const i128 x_lo = bnd[0].min, x_hi = bnd[0].max;
  if (x_lo > x_hi) return 0;
  struct Aff {
    i128 m, c;
    i128 at(i128 x) const { return m * x + c; }
  };
  const Aff lo[3] = {{0, bnd[1].min}, {1, -bnd[2].max}, {-1, bnd[3].min}};
  const Aff hi[3] = {{0, bnd[1].max}, {1, -bnd[2].min}, {-1, bnd[3].max}};

  i128 cuts[28];
  std::size_t ncuts = 0;
  cuts[ncuts++] = x_lo;
  auto add_crossings = [&](const Aff* f) {
    for (std::size_t a = 0; a < 3; ++a) {
      for (std::size_t b = a + 1; b < 3; ++b) {
        if (f[a].m == f[b].m) continue;
        i128 cross = floor_div(f[b].c - f[a].c, f[a].m - f[b].m);
        for (i128 v : {cross, cross + 1})
          if (v > x_lo && v <= x_hi) cuts[ncuts++] = v;
      }
    }
  };
  add_crossings(lo);
  add_crossings(hi);
  std::sort(cuts, cuts + ncuts);
  ncuts = static_cast<std::size_t>(std::unique(cuts, cuts + ncuts) - cuts);

  const i128 cap = static_cast<i128>(opts_.count_cap);
  i128 total = 0;
  for (std::size_t t = 0; t < ncuts; ++t) {
    const i128 s = cuts[t];
    const i128 e = (t + 1 < ncuts) ? cuts[t + 1] - 1 : x_hi;
    // No crossings strictly inside the segment, so one component of each
    // envelope dominates at both endpoints (pick it by endpoint values).
    auto pick = [&](const Aff* f, bool want_max) {
      std::size_t best = 0;
      for (std::size_t a = 1; a < 3; ++a) {
        i128 ds = f[a].at(s) - f[best].at(s);
        i128 de = f[a].at(e) - f[best].at(e);
        if (!want_max) {
          ds = -ds;
          de = -de;
        }
        if (ds > 0 || (ds == 0 && de > 0)) best = a;
      }
      return f[best];
    };
    const Aff l = pick(lo, /*want_max=*/true);
    const Aff u = pick(hi, /*want_max=*/false);
    // g(x) = U(x) - L(x) + 1, affine on the segment; sum max(0, g).
    const i128 beta = u.m - l.m;
    const i128 alpha = u.c - l.c + 1;
    i128 from = s, to = e;
    if (beta == 0) {
      if (alpha < 1) continue;
    } else if (beta > 0) {
      from = std::max(from, ceil_div(1 - alpha, beta));
    } else {
      to = std::min(to, floor_div(1 - alpha, beta));
    }
    if (from > to) continue;
    const i128 terms = to - from + 1;
    // Every term is >= 1, so a term count past the cap already overflows
    // it (and keeps the series arithmetic far from i128 limits).
    if (terms > cap) return std::nullopt;
    const i128 g_from = alpha + beta * from;
    const i128 g_to = alpha + beta * to;
    total += terms * (g_from + g_to) / 2;
    if (total > cap) return std::nullopt;
  }
  return static_cast<u64>(total);
}

std::optional<u64> Folder::count_chunk(const Chunk& c, bool is_box,
                                       const poly::Polyhedron& dom) const {
  const i128 cap = static_cast<i128>(opts_.count_cap);
  if (is_box) {
    // Closed-form box volume, capped like enumeration.
    i128 count = 1;
    for (std::size_t i = 0; i < in_dim_; ++i) {
      count = mul_checked(count, c.bnd[i].max - c.bnd[i].min + 1);
      if (count > cap) return std::nullopt;
    }
    return static_cast<u64>(count);
  }
  if (in_dim_ == 2 && opts_.use_octagon) return count_octagon_2d(c.bnd);
  // Genuinely irregular (3D+ non-box): enumerate, but never past the
  // observed count — the caller only counts when the stream was strictly
  // lex-increasing, so its points are distinct members of the domain and
  // lattice_count > points already settles the verdict as inexact.
  return dom.count_points(std::min<u64>(opts_.count_cap, c.points));
}

poly::Piece Folder::build_piece(const Chunk& chunk) const {
  bool is_box = true, clamped = false;
  poly::Polyhedron dom = emit_domain(chunk.bnd, is_box, clamped);

  bool domain_exact = lex_ok_ && !clamped;
  if (in_dim_ == 0) {
    domain_exact = lex_ok_ && chunk.points == 1;
  } else if (domain_exact) {
    std::optional<u64> n = count_chunk(chunk, is_box, dom);
    domain_exact = n.has_value() && *n == chunk.points;
  }

  // Integral affine label function? Coefficients must be integers that fit
  // in 64 bits — fits through wild values (e.g. double bit patterns) can
  // produce huge rational coefficients, which simply means "not a SCEV".
  auto representable = [](const Rat& r) {
    return r.is_integer() && r.num() >= INT64_MIN && r.num() <= INT64_MAX;
  };
  bool label_ok = true;
  std::vector<poly::AffineExpr> outs;
  outs.reserve(label_dim_);
  for (std::size_t j = 0; j < label_dim_ && label_ok; ++j) {
    std::vector<i64> coeffs(in_dim_);
    for (std::size_t i = 0; i < in_dim_; ++i) {
      if (!representable(chunk.fit[j][i])) {
        label_ok = false;
        break;
      }
      coeffs[i] = narrow_i64(chunk.fit[j][i].num());
    }
    if (!label_ok || !representable(chunk.fit[j][in_dim_])) {
      label_ok = false;
      break;
    }
    outs.emplace_back(std::move(coeffs),
                      narrow_i64(chunk.fit[j][in_dim_].num()));
  }
  if (!label_ok) outs.assign(label_dim_, poly::AffineExpr(in_dim_));

  poly::Piece piece;
  piece.domain = std::move(dom);
  piece.label_fn = poly::AffineMap(in_dim_, std::move(outs));
  piece.exact = domain_exact && label_ok;
  piece.label_exact = label_ok;
  piece.observed_points = chunk.points;
  return piece;
}

FoldCache::Key Folder::cache_key(const Chunk& c) const {
  // Canonical form: every input build_piece() reads, in a fixed order.
  // The template rows are a function of (in_dim, octagon), so encoding
  // the bounds in rows_ order covers the sorted-constraint canonical form.
  FoldCache::Key key;
  key.reserve(6 + 4 * c.bnd.size() + 4 * label_dim_ * (in_dim_ + 1));
  auto push128 = [&key](i128 v) {
    key.push_back(static_cast<u64>(static_cast<unsigned __int128>(v)));
    key.push_back(static_cast<u64>(static_cast<unsigned __int128>(v) >> 64));
  };
  key.push_back(static_cast<u64>(in_dim_));
  key.push_back(static_cast<u64>(label_dim_));
  key.push_back(opts_.use_octagon ? 1 : 0);
  key.push_back(opts_.count_cap);
  key.push_back(lex_ok_ ? 1 : 0);
  key.push_back(c.points);
  for (const Bnd& b : c.bnd) {
    push128(b.min);
    push128(b.max);
  }
  for (const auto& row : c.fit) {
    for (const Rat& r : row) {
      push128(r.num());
      push128(r.den());
    }
  }
  return key;
}

void Folder::close_chunk(Chunk& chunk) {
  // Running collapse bounds: every close merges its template bounds in
  // O(d²), so the collapsed over-approximation in finish() never needs
  // the accumulated pieces themselves.
  if (collapse_bnd_.empty()) {
    collapse_bnd_ = chunk.bnd;
  } else {
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      collapse_bnd_[r].min = std::min(collapse_bnd_[r].min, chunk.bnd[r].min);
      collapse_bnd_[r].max = std::max(collapse_bnd_[r].max, chunk.bnd[r].max);
    }
  }
  collapse_observed_ += chunk.points;

  if (result_.pieces().size() >= opts_.max_pieces) collapsed_ = true;
  // Once the piece cap trips, finish() replaces everything with the
  // bound-merged over-approximation — stop materializing pieces at all.
  if (collapsed_) return;

  if (opts_.cache != nullptr) {
    FoldCache::Key key = cache_key(chunk);
    if (auto hit = opts_.cache->find(key)) {
      result_.add_piece(*hit);
      return;
    }
    poly::Piece piece = build_piece(chunk);
    opts_.cache->insert(std::move(key),
                        std::make_shared<const poly::Piece>(piece));
    result_.add_piece(std::move(piece));
    return;
  }
  result_.add_piece(build_piece(chunk));
}

poly::PolySet Folder::finish() {
  flush_run();
  chain_finalize();  // flush_run may have deferred the final run
  // Close remaining chunks in creation order for stable output.
  std::sort(open_.begin(), open_.end(),
            [](const Chunk& a, const Chunk& b) { return a.created < b.created; });
  for (auto& c : open_) close_chunk(c);
  open_.clear();
  poly::PolySet out = std::move(result_);
  result_ = poly::PolySet(in_dim_);
  lex_ok_ = true;
  run_len_ = 0;
  run_stride_viol_ = false;
  have_prev_ = false;

  const bool was_collapsed = collapsed_;
  std::vector<Bnd> merged_bnd = std::move(collapse_bnd_);
  const u64 merged_observed = collapse_observed_;
  collapsed_ = false;
  collapse_bnd_.clear();
  collapse_observed_ = 0;

  if (was_collapsed) {
    // Scalability guard tripped: merge everything into one
    // over-approximate template piece (paper §5, over-approximation),
    // built from the running bounds — O(d²) regardless of piece count.
    bool is_box = true, clamped = false;
    if (merged_bnd.empty()) merged_bnd.resize(rows_.size());
    poly::Polyhedron dom = emit_domain(merged_bnd, is_box, clamped);
    poly::Piece merged;
    merged.domain = std::move(dom);
    merged.label_fn = poly::AffineMap(
        in_dim_, std::vector<poly::AffineExpr>(label_dim_,
                                               poly::AffineExpr(in_dim_)));
    merged.exact = false;
    merged.label_exact = false;
    merged.observed_points = merged_observed;
    poly::PolySet collapsed_set(in_dim_);
    collapsed_set.add_piece(std::move(merged));
    return collapsed_set;
  }
  return out;
}

}  // namespace pp::fold
