// Assembly of the compact polyhedral DDG: a DdgSink that feeds every
// statement / dependence stream through a Folder, then finalizes into a
// FoldedProgram — folded iteration domains, affine value functions (SCEV
// recognition), affine access functions, and folded dependence relations
// with SCEV chains pruned (paper §5).
#pragma once

#include <map>
#include <memory>
#include <set>

#include "ddg/ddg_builder.hpp"
#include "fold/folder.hpp"
#include "obs/obs.hpp"
#include "poly/dep_relation.hpp"
#include "support/budget.hpp"
#include "support/cancel.hpp"
#include "support/thread_pool.hpp"

namespace pp::fold {

/// One statement of the compact polyhedral DDG.
struct FoldedStatement {
  ddg::Statement meta;          ///< identity + dynamic counters
  poly::PolySet domain;         ///< folded iteration domain
  poly::PolySet values;         ///< produced values as labels (may be empty)
  poly::PolySet addresses;      ///< effective addresses as labels (mem ops)
  bool is_scev = false;         ///< recognized scalar-evolution instruction
  bool domain_exact = false;    ///< no over-approximation in the domain
  /// Degraded by a budget cap or a per-stream fold fault: the streamed
  /// instance set is incomplete, so every fold for this statement is
  /// forced over-approximate (domain_exact=false, all pieces inexact,
  /// never SCEV) regardless of how affine the partial points looked.
  bool degraded = false;

  /// The access function of a memory statement, when it folded into a
  /// single exact affine piece; nullptr otherwise.
  const poly::AffineMap* affine_access() const;
  /// Stride (in bytes) of the access function along coordinate `dim`.
  std::optional<i64> stride_along(std::size_t dim) const;
};

/// One folded dependence edge.
struct FoldedDep {
  int src = -1;
  int dst = -1;
  ddg::DepKind kind{};
  poly::PolySet relation;  ///< domain over dst coords; labels = src coords

  /// View as poly::DepRelation for the scheduler.
  poly::DepRelation as_relation() const;

  /// Under-approximation (the paper's §10 future work, "development of
  /// under-approximation schemes in the DDG"): the exact pieces only —
  /// every instance they describe is a *must*-dependence that provably
  /// occurred, with its source instance exactly known. Inexact
  /// (over-approximate) pieces are dropped.
  poly::PolySet must_relation() const;

  /// Fraction of observed dependence instances covered by must pieces.
  double must_coverage() const;
};

/// The compact polyhedral DDG for one profiled execution.
struct FoldedProgram {
  std::vector<FoldedStatement> statements;  ///< indexed by statement id
  std::vector<FoldedDep> deps;              ///< SCEV-pruned
  u64 pruned_dep_edges = 0;   ///< edges removed by SCEV pruning
  u64 pruned_dep_instances = 0;
  u64 total_dynamic_ops = 0;
  u64 degraded_statements = 0;  ///< statements demoted to over-approximation

  /// Per-statement affinity verdict: true when the statement's domain and
  /// (for memory ops) access function folded exactly AND every incident
  /// non-pruned dependence folded exactly. Indexed by statement id.
  ///
  /// `strict` additionally requires every fold to be a SINGLE piece —
  /// matching the paper's folding, which "does not support lattices at
  /// folding time" and thus never recognizes the piecewise patterns
  /// (modulo indexing, boundary splits) our multi-chunk folder handles.
  /// Table 5's %Aff uses strict mode for comparability.
  std::vector<bool> affine_flags(bool strict = true) const;

  /// %Aff numerator: dynamic ops in statements whose domain and (for
  /// memory ops) access function folded exactly, with all incident
  /// non-pruned dependences exact.
  u64 fully_affine_ops() const;

  const FoldedStatement& stmt(int id) const {
    return statements[static_cast<std::size_t>(id)];
  }
};

/// Streaming sink: plug into DdgBuilder, then call finalize() once.
class FoldingSink : public ddg::DdgSink {
 public:
  explicit FoldingSink(FolderOptions opts = {});

  void on_instruction(const ddg::Statement& s, std::span<const i64> coords,
                      bool has_value, i64 value, bool has_address,
                      i64 address) override;
  void on_dependence(ddg::DepKind kind, int src_stmt,
                     std::span<const i64> src_coords, int dst_stmt,
                     std::span<const i64> dst_coords, int slot) override;
  /// Bulk entry points for compressed trace runs: one Folder::add_run per
  /// stream (inline mode) or one buffer append per run (parallel mode)
  /// instead of n scalar calls — bit-identical output either way.
  void on_instruction_run(const InstrRun& r) override;
  void on_dependence_run(const DepRun& r) override;

  /// Declare statements whose streams are incomplete (builder budget
  /// exhaustion). finalize() demotes them to over-approximations BEFORE
  /// SCEV recognition and pruning — a truncated stream can look affine.
  void mark_degraded(const std::set<int>& stmt_ids);
  /// Destination for per-stream fold-fault diagnostics (may be null).
  void set_diagnostics(support::DiagnosticLog* diag) { diag_ = diag; }
  /// Fan folding out on `pool` (null or serial pool = fold inline while
  /// streaming, the reference behavior). Must be set before the first
  /// event: with 2+ lanes the sink records events into compact per-stream
  /// buffers and finalize() folds one task per statement / dependence key
  /// into pre-indexed slots, merging in the serial order — the resulting
  /// program and diagnostics are byte-identical to the serial fold.
  void set_pool(support::ThreadPool* pool) { pool_ = pool; }
  /// Budget for the folder-piece cap (may be null). Charged in the
  /// deterministic merge order, never from worker tasks, so exhaustion
  /// degrades the same statements at every thread count.
  void set_budget(support::RunBudget* budget) { budget_ = budget; }
  /// Observability session (may be null). finalize() wraps its fan-out in
  /// a span and publishes stream/piece counters; nothing touches the
  /// streaming hot path.
  void set_obs(obs::Session* obs) { obs_ = obs; }
  /// Cancellation token (may be null). finalize() polls it at every MERGE
  /// position — never from phase-A worker tasks, which only probe it to
  /// skip useless work — so a cancel observed mid-fold degrades the same
  /// contiguous suffix of statements/edges at every thread count. The
  /// already-merged prefix keeps its certified folds; the rest become
  /// over-approximations, exactly like budget exhaustion.
  void set_cancel(support::CancelToken* cancel) { cancel_ = cancel; }
  /// Chaos hook (ServiceFault::kDeadlineMidFold): fire the token as an
  /// expired deadline when the merge reaches position `pos` (0 disables).
  /// Merge positions are structural, so the injected deadline lands on the
  /// identical statement at any thread count.
  void set_chaos_deadline_at(std::size_t pos) { chaos_deadline_at_ = pos; }

  /// The sink-wide canonical-piece cache shared by every folder this sink
  /// creates (unless FolderOptions carried an external one).
  const FoldCache& cache() const { return cache_; }

  /// Fold everything and build the program. `table` must be the
  /// DdgBuilder's statement table from the same run. A pp::Error thrown by
  /// one statement's (or edge's) folder degrades that statement (or edge)
  /// to an over-approximate placeholder instead of escaping.
  FoldedProgram finalize(const ddg::StatementTable& table);

 private:
  struct StmtStreams {
    std::unique_ptr<Folder> domain;
    std::unique_ptr<Folder> value;
    std::unique_ptr<Folder> address;
  };
  using DepKey = std::tuple<int, int, ddg::DepKind, int>;  // src,dst,kind,slot
  struct DepKeyHash {
    std::size_t operator()(const DepKey& k) const {
      return static_cast<std::size_t>(std::get<0>(k)) * 0x9e3779b97f4a7c15ull ^
             static_cast<std::size_t>(std::get<1>(k)) * 0xc2b2ae3d27d4eb4full ^
             (static_cast<std::size_t>(std::get<2>(k)) << 8) ^
             static_cast<std::size_t>(std::get<3>(k));
    }
  };

  /// Compact event record for the parallel fold: one flat coordinate
  /// buffer per stream (arity is fixed per statement — the interned
  /// context determines the depth), so phase A can replay each stream
  /// into a fresh Folder without touching shared state.
  struct StmtBuffer {
    std::size_t dim = 0;
    bool dim_set = false;
    u64 domain_points = 0;
    std::vector<i64> domain;   ///< domain_points x dim coords
    std::vector<i64> value;    ///< rows of dim coords + 1 label
    std::vector<i64> address;  ///< rows of dim coords + 1 label
  };
  struct DepBuffer {
    std::size_t dst_dim = 0;
    std::size_t src_dim = 0;
    u64 points = 0;
    std::vector<i64> rows;  ///< points x (dst_dim + src_dim)
  };

  /// Result of folding one statement's streams (phase A output slot).
  struct StmtOutcome {
    poly::PolySet domain{0};
    poly::PolySet values{0};
    poly::PolySet addresses{0};
    bool fault = false;
    std::string fault_reason;
  };
  /// Result of folding one dependence key (phase A output slot).
  struct DepOutcome {
    poly::PolySet relation{0};
    bool fault = false;
    std::string fault_reason;
  };

  bool buffered() const { return pool_ != nullptr && !pool_->serial(); }
  StmtOutcome fold_stmt_buffer(const StmtBuffer& b) const;
  DepOutcome fold_dep_buffer(const DepBuffer& b) const;

  FolderOptions opts_;
  /// Cross-statement piece interning: folders of every statement and
  /// dependence key share it, so identical closed chunks (same canonical
  /// form) fold once. Thread-safe for the parallel re-fold path.
  FoldCache cache_;
  std::map<int, StmtStreams> stmts_;
  std::unordered_map<DepKey, std::unique_ptr<Folder>, DepKeyHash> deps_;
  std::map<int, StmtBuffer> stmt_buf_;
  std::unordered_map<DepKey, DepBuffer, DepKeyHash> dep_buf_;
  std::set<int> degraded_;
  support::DiagnosticLog* diag_ = nullptr;
  support::ThreadPool* pool_ = nullptr;
  support::RunBudget* budget_ = nullptr;
  obs::Session* obs_ = nullptr;
  support::CancelToken* cancel_ = nullptr;
  std::size_t chaos_deadline_at_ = 0;
};

/// True when `op` is a scalar-evolution candidate: integer register
/// arithmetic whose folded values being affine identifies it as loop
/// bookkeeping (induction updates, address computation, trip-count
/// compares). Memory and FP instructions are never SCEV — their values are
/// genuine data flow.
bool scev_candidate(ir::Op op);

}  // namespace pp::fold
