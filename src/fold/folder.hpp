// Streaming geometric folding (paper §5 and tech report RR-9244, whose
// interface the paper specifies): the input is a stream of
//   (I, a(I))   — iteration vector + integer label vector —
// per context; the output is a union of polyhedra P with affine functions
// A such that A(I) = a(I) for all I in P, plus an exactness verdict used
// for the paper's over-approximation accounting (%Aff).
//
// Design:
//  * Domains are tracked against a box+octagon constraint *template*
//    (±x_i, x_i ± x_j): min/max of each template expression over a piece's
//    points give the tightest template polyhedron containing them.
//    Rectangular, triangular and ±1-skewed loop nests fold exactly;
//    anything else becomes a certified over-approximation.
//  * Labels are fitted by exact rational interpolation over an affinely
//    independent basis of seen points. Every point is verified against a
//    fit; points that extend the affine hull extend the basis (a fit
//    restricted to the old hull never changes, so earlier verifications
//    remain valid).
//  * The folder keeps SEVERAL pieces open simultaneously and routes each
//    incoming point to the piece whose affine function predicts its label
//    (piecewise streams — loop-exit compares, boundary statements —
//    interleave their pieces; a single-chunk folder would fragment them).
//    A point no open piece accepts extends the most recent piece's fit
//    when it lies off that piece's affine hull, and otherwise opens a new
//    piece, evicting the least-recently-used one past the budget.
//  * Regular streams never reach the per-point machinery: the folder
//    recognizes arithmetic runs — constant point-stride with constant
//    label-stride — and absorbs a whole run with O(1) chunk updates
//    (endpoint-only template bounds, at most one hull extension), which
//    is equivalent to routing the run point by point (see DESIGN.md,
//    "Folding").
//  * Exactness of a piece = (#lattice points of the domain == #points
//    routed to it) AND the label fit is affine with integer coefficients.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "poly/poly_set.hpp"

namespace pp::fold {

class FoldCache;

struct FolderOptions {
  /// Lattice-point budget for the exactness check; domains bigger than
  /// this are conservatively marked over-approximate.
  u64 count_cap = 1u << 22;
  /// Upper bound on finalized pieces; once exceeded, everything collapses
  /// into one over-approximate piece (scalability guard, cf. paper §5).
  std::size_t max_pieces = 64;
  /// Simultaneously open pieces for interleaved piecewise streams.
  /// 1 reproduces a single-chunk folder (the paper's behaviour on
  /// interleaved piecewise patterns — see bench/ablation_folding).
  std::size_t max_open_chunks = 4;
  /// Include the octagon rows (x_i ± x_j) in the domain template. Without
  /// them only boxes fold exactly (triangular/skewed nests become
  /// over-approximations).
  bool use_octagon = true;
  /// Recognize arithmetic runs in the stream and absorb them with O(1)
  /// chunk updates per run. Off reproduces the point-at-a-time folder —
  /// the outputs are identical by construction (ablation/testing knob).
  bool stride_runs = true;
  /// Optional fold-wide canonical-piece cache shared by many folders
  /// (cross-statement interning); may be null. The cache key captures
  /// every input of piece construction, so a hit is byte-identical to a
  /// recomputation.
  FoldCache* cache = nullptr;
};

/// Fold-wide canonical-piece cache: a closed chunk's piece is a pure
/// function of its canonical form — template bounds in fixed row order,
/// the rational label fit, the observed count and the exactness inputs —
/// so identical pieces across statements and dependence groups are built
/// once and shared. Thread-safe (the parallel re-fold path hits it from
/// worker tasks); hit/miss totals are timing-class observability only,
/// since the hit pattern depends on scheduling while the values do not.
class FoldCache {
 public:
  using Key = std::vector<u64>;

  /// Returns the cached piece for `key`, or null on a miss.
  std::shared_ptr<const poly::Piece> find(const Key& key) const;
  /// Inserts (first writer wins); no-op once the entry cap is reached.
  void insert(Key key, std::shared_ptr<const poly::Piece> piece);

  u64 hits() const { return hits_.load(std::memory_order_relaxed); }
  u64 misses() const { return misses_.load(std::memory_order_relaxed); }
  std::size_t size() const;

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  /// Growth bound; beyond it the cache stops learning (still serves hits).
  static constexpr std::size_t kMaxEntries = 1u << 16;

  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const poly::Piece>, KeyHash> map_;
  mutable std::atomic<u64> hits_{0};
  mutable std::atomic<u64> misses_{0};
};

/// Folds one (iteration vector, label vector) stream.
class Folder {
 public:
  /// `in_dim` = iteration-vector arity, `label_dim` = label arity.
  Folder(std::size_t in_dim, std::size_t label_dim, FolderOptions opts = {});

  /// Feed one point. `label.size()` must equal label_dim.
  void add(std::span<const i64> point, std::span<const i64> label);

  /// Feed `n` points in one call: the k-th point/label is obtained from
  /// the previous one by adding `pstride`/`lstride` with 64-bit wrapping
  /// (so a caller replaying observed values reproduces them exactly even
  /// across overflow). Equivalent to `n` scalar add() calls by
  /// construction: the call falls back to scalar routing until the
  /// pending-run state can absorb the remainder as a single O(1) stride
  /// extension (constant strides matching the pending run, no wrap left).
  void add_run(std::span<const i64> point, std::span<const i64> label,
               std::span<const i64> pstride, std::span<const i64> lstride,
               u64 n);

  /// Close all open chunks and return the accumulated pieces. The folder
  /// can keep streaming afterwards.
  poly::PolySet finish();

  std::size_t in_dim() const { return in_dim_; }
  std::size_t label_dim() const { return label_dim_; }
  u64 points_seen() const { return total_points_; }

 private:
  /// One template expression, x_i (j < 0) or x_i + cj·x_j (cj = ±1) —
  /// memoized per (dim, octagon) in `rows_` instead of materialized as a
  /// coefficient vector in every chunk.
  struct TRow {
    int i = 0;
    int j = -1;
    i64 cj = 0;
  };
  /// Observed min/max of one template row over a chunk's points.
  struct Bnd {
    i128 min = 0;
    i128 max = 0;
  };

  struct Chunk {
    u64 id = 0;         ///< stable identity (open_ indices shift on evict)
    u64 points = 0;
    u64 last_use = 0;   ///< stream sequence number of the last routed point
    u64 created = 0;    ///< creation sequence (stable output ordering)
    std::vector<Bnd> bnd;  ///< per template row, in `rows_` order
    std::vector<std::vector<i64>> basis_pts;
    std::vector<std::vector<i64>> basis_labels;
    RatMatrix hull;     ///< RREF rows of [I 1] over the basis
    /// Integer image of `hull` (each row scaled by its denominators' lcm,
    /// pivot column first): lets the hot in_hull membership test run
    /// fraction-free on i128 instead of allocating rationals. Rebuilt on
    /// every basis extension; empty = scaling overflowed, use `hull`.
    std::vector<std::vector<i128>> hull_int;
    std::vector<std::size_t> hull_piv;        ///< pivot column per int row
    std::vector<RatVec> fit;                  ///< per label dim: coeffs+const
    std::vector<std::vector<i128>> fit_int;   ///< integer fast path
  };

  Chunk make_chunk(std::span<const i64> point, std::span<const i64> label,
                   u64 at_seq);
  bool in_hull(const Chunk& c, std::span<const i64> point) const;
  bool predicts(const Chunk& c, std::span<const i64> point,
                std::span<const i64> label) const;
  void absorb(Chunk& c, std::span<const i64> point,
              std::span<const i64> label, bool refit_needed, u64 at_seq);
  void extend_basis(Chunk& c, std::span<const i64> point,
                    std::span<const i64> label);
  void refit(Chunk& c);
  void close_chunk(Chunk& c);

  /// The point-at-a-time routing steps (predict → MRU refit → new chunk);
  /// returns the index in `open_` of the chunk that got the point.
  std::size_t route_point(std::span<const i64> point,
                          std::span<const i64> label, u64 at_seq);
  void start_run(std::span<const i64> point, std::span<const i64> label);
  void set_run_last(std::span<const i64> point, std::span<const i64> label);
  /// Replay the pending run; switches to bulk absorption as soon as the
  /// receiving chunk's fit maps the stride.
  void flush_run();
  /// Linear part of the chunk's fit applied to the pending stride equals
  /// the label stride (then the fit predicts every remaining run point).
  bool fit_maps_stride(const Chunk& c) const;
  bool fit_maps(const Chunk& c, std::span<const i128> ps,
                std::span<const i128> ls) const;
  void bulk_absorb(Chunk& c, std::span<const i64> first,
                   std::span<const i64> first_label, u64 extra, u64 end_seq);

  i128 eval_row(const TRow& t, std::span<const i64> pt) const;
  /// Emit the non-implied template constraints of `bnd`; bounds that do
  /// not fit int64 are dropped (sound over-approximation) with `clamped`
  /// set so the caller forfeits exactness.
  poly::Polyhedron emit_domain(const std::vector<Bnd>& bnd, bool& is_box,
                               bool& clamped) const;
  /// Lattice count of the chunk's template domain, capped like
  /// enumeration: closed forms for boxes and 2-D octagons, enumeration
  /// (bounded by the observed count) for genuinely irregular pieces.
  std::optional<u64> count_chunk(const Chunk& c, bool is_box,
                                 const poly::Polyhedron& dom) const;
  std::optional<u64> count_octagon_2d(const std::vector<Bnd>& bnd) const;
  poly::Piece build_piece(const Chunk& c) const;
  FoldCache::Key cache_key(const Chunk& c) const;

  std::size_t in_dim_;
  std::size_t label_dim_;
  FolderOptions opts_;
  std::vector<TRow> rows_;  ///< memoized template rows (dim + octagon)

  std::vector<Chunk> open_;
  std::vector<std::size_t> route_order_;  ///< routing scratch (recency sort)
  mutable std::vector<i128> hullv_;       ///< in_hull reduction scratch
  void rebuild_hull_int(Chunk& c) const;
  u64 seq_ = 0;
  bool lex_ok_ = true;

  // Pending arithmetic run. Points are buffered until the stride breaks
  // (or finish()), then replayed — point by point until a chunk's fit maps
  // the stride, in bulk from there on. `run_last_` doubles as the
  // previous-point reference for the lexicographic check (no per-point
  // allocation or copy beyond maintaining it).
  u64 run_len_ = 0;
  u64 run_start_seq_ = 0;
  bool run_stride_viol_ = false;  ///< stride not lex-positive (dup/backstep)
  bool have_prev_ = false;        ///< stride_runs=false: lex reference valid
  std::vector<i64> run_base_, run_last_;
  std::vector<i64> run_lbase_, run_llast_;
  std::vector<i128> pstride_, lstride_;
  std::vector<i64> cur_pt_, cur_lab_;  ///< flush_run scratch
  std::vector<i64> arun_pt_, arun_lab_;  ///< add_run scratch (add() may
                                         ///< trigger flush_run, which owns
                                         ///< cur_pt_/cur_lab_)

  // Chained runs ("runs of runs", levels 2 and 3): loop nests flush one
  // arithmetic run per innermost-loop entry; consecutive entries produce
  // runs of identical length and stride whose bases advance by a constant
  // second-level stride o1, and consecutive middle-loop entries produce
  // GROUPS of runs whose group bases advance by a constant third-level
  // stride o2 (the group size R is learned from the first group). Once a
  // chunk's fit maps every stride and the chain's generators lie in its
  // affine hull, every further matching run is absorbed with O(d)
  // bookkeeping — the template bounds are applied once, at the chain's
  // lattice corners (at most 12 points), when the chain breaks.
  // chain_defer() states the exact conditions under which this is
  // equivalent to flushing each run through the generic path.
  enum class ChainState : std::uint8_t { kNone, kSeeded, kArmed };
  ChainState chain_state_ = ChainState::kNone;
  u64 chain_chunk_id_ = 0;  ///< chunk absorbing the chain
  u64 chain_T_ = 0;         ///< per-run length (fixed across the chain)
  u64 chain_R_ = 0;         ///< runs per complete group (0 = unlearned)
  u64 chain_M_ = 0;         ///< current group ordinal (1-based)
  u64 chain_B_ = 0;         ///< runs in the current group
  u64 chain_points_ = 0;    ///< total deferred points
  u64 chain_end_seq_ = 0;   ///< seq of the last deferred point
  std::vector<i128> chain_s_, chain_ls_;    ///< level-1 (within-run) stride
  std::vector<i128> chain_o1_, chain_lo1_;  ///< level-2 (run-to-run) stride
  std::vector<i128> chain_o2_, chain_lo2_;  ///< level-3 (group-to-group)
  std::vector<i64> chain_base0_, chain_lbase0_;  ///< first deferred run base
  std::vector<i64> chain_group_base_, chain_group_lbase_;
  std::vector<i64> chain_last_base_, chain_last_lbase_;
  std::vector<i64> chain_seed_base_, chain_seed_lbase_;
  std::vector<i64> chain_tmp_;  ///< hull-probe / corner scratch
  u64 next_chunk_id_ = 0;
  Chunk* chunk_by_id(u64 id);
  /// Absorb the just-ended pending run into the active chain (or arm a
  /// seeded one); true = fully handled, skip the generic flush path.
  bool chain_defer(u64 n);
  /// Apply the deferred chain effects (corner bounds, point count) to its
  /// chunk and reset the chain. Must run before any routing or close.
  void chain_finalize();
  /// Remember a cleanly absorbed run as a chain candidate.
  void chain_seed(u64 n, u64 chunk_id, bool clean);

  poly::PolySet result_{0};
  u64 total_points_ = 0;
  bool collapsed_ = false;  ///< max_pieces exceeded

  // Running template bounds over every closed chunk: once the piece cap
  // trips, finish() builds the collapsed over-approximation from these in
  // O(d²) instead of an LP sweep over all accumulated pieces.
  std::vector<Bnd> collapse_bnd_;
  u64 collapse_observed_ = 0;
};

}  // namespace pp::fold
