// Streaming geometric folding (paper §5 and tech report RR-9244, whose
// interface the paper specifies): the input is a stream of
//   (I, a(I))   — iteration vector + integer label vector —
// per context; the output is a union of polyhedra P with affine functions
// A such that A(I) = a(I) for all I in P, plus an exactness verdict used
// for the paper's over-approximation accounting (%Aff).
//
// Design:
//  * Domains are tracked against a box+octagon constraint *template*
//    (±x_i, x_i ± x_j): min/max of each template expression over a piece's
//    points give the tightest template polyhedron containing them.
//    Rectangular, triangular and ±1-skewed loop nests fold exactly;
//    anything else becomes a certified over-approximation.
//  * Labels are fitted by exact rational interpolation over an affinely
//    independent basis of seen points. Every point is verified against a
//    fit; points that extend the affine hull extend the basis (a fit
//    restricted to the old hull never changes, so earlier verifications
//    remain valid).
//  * The folder keeps SEVERAL pieces open simultaneously and routes each
//    incoming point to the piece whose affine function predicts its label
//    (piecewise streams — loop-exit compares, boundary statements —
//    interleave their pieces; a single-chunk folder would fragment them).
//    A point no open piece accepts extends the most recent piece's fit
//    when it lies off that piece's affine hull, and otherwise opens a new
//    piece, evicting the least-recently-used one past the budget.
//  * Exactness of a piece = (#lattice points of the domain == #points
//    routed to it) AND the label fit is affine with integer coefficients.
#pragma once

#include <optional>

#include "poly/poly_set.hpp"

namespace pp::fold {

struct FolderOptions {
  /// Lattice-point budget for the exactness check; domains bigger than
  /// this are conservatively marked over-approximate.
  u64 count_cap = 1u << 22;
  /// Upper bound on finalized pieces; once exceeded, everything collapses
  /// into one over-approximate piece (scalability guard, cf. paper §5).
  std::size_t max_pieces = 64;
  /// Simultaneously open pieces for interleaved piecewise streams.
  /// 1 reproduces a single-chunk folder (the paper's behaviour on
  /// interleaved piecewise patterns — see bench/ablation_folding).
  std::size_t max_open_chunks = 4;
  /// Include the octagon rows (x_i ± x_j) in the domain template. Without
  /// them only boxes fold exactly (triangular/skewed nests become
  /// over-approximations).
  bool use_octagon = true;
};

/// Folds one (iteration vector, label vector) stream.
class Folder {
 public:
  /// `in_dim` = iteration-vector arity, `label_dim` = label arity.
  Folder(std::size_t in_dim, std::size_t label_dim, FolderOptions opts = {});

  /// Feed one point. `label.size()` must equal label_dim.
  void add(std::span<const i64> point, std::span<const i64> label);

  /// Close all open chunks and return the accumulated pieces. The folder
  /// can keep streaming afterwards.
  poly::PolySet finish();

  std::size_t in_dim() const { return in_dim_; }
  std::size_t label_dim() const { return label_dim_; }
  u64 points_seen() const { return total_points_; }

 private:
  struct TemplateRow {
    std::vector<i64> coeffs;  ///< template expression coefficients
    i128 min = 0, max = 0;
  };

  struct Chunk {
    u64 points = 0;
    u64 last_use = 0;   ///< stream sequence number of the last routed point
    u64 created = 0;    ///< creation sequence (stable output ordering)
    std::vector<TemplateRow> tmpl;
    std::vector<std::vector<i64>> basis_pts;
    std::vector<std::vector<i64>> basis_labels;
    RatMatrix hull;     ///< RREF rows of [I 1] over the basis
    std::vector<RatVec> fit;                  ///< per label dim: coeffs+const
    std::vector<std::vector<i128>> fit_int;   ///< integer fast path
  };

  Chunk make_chunk(std::span<const i64> point, std::span<const i64> label);
  bool in_hull(const Chunk& c, std::span<const i64> point) const;
  bool predicts(const Chunk& c, std::span<const i64> point,
                std::span<const i64> label) const;
  void absorb(Chunk& c, std::span<const i64> point,
              std::span<const i64> label, bool refit_needed);
  void extend_basis(Chunk& c, std::span<const i64> point,
                    std::span<const i64> label);
  void refit(Chunk& c);
  void close_chunk(Chunk& c);

  std::size_t in_dim_;
  std::size_t label_dim_;
  FolderOptions opts_;

  std::vector<Chunk> open_;
  u64 seq_ = 0;
  std::optional<std::vector<i64>> last_point_;
  bool lex_ok_ = true;

  poly::PolySet result_{0};
  u64 total_points_ = 0;
  bool collapsed_ = false;  ///< max_pieces exceeded
};

}  // namespace pp::fold
